#include "threat/probabilistic_attacker.h"

#include <cmath>
#include <stdexcept>

namespace ct::threat {

void validate(const AttackerPower& power) {
  if (power.intrusion_attempts < 0 || power.isolation_attempts < 0) {
    throw std::invalid_argument("AttackerPower: negative attempt budget");
  }
  const auto ok = [](double p) { return p >= 0.0 && p <= 1.0; };
  if (!ok(power.intrusion_success) || !ok(power.isolation_success)) {
    throw std::invalid_argument(
        "AttackerPower: success probabilities must be in [0, 1]");
  }
}

double binomial_pmf(int n, int k, double p) {
  if (k < 0 || k > n) return 0.0;
  if (p <= 0.0) return k == 0 ? 1.0 : 0.0;
  if (p >= 1.0) return k == n ? 1.0 : 0.0;
  // Multiplicative form: prod_{i=1..k} ((n-k+i)/i) * p^k * (1-p)^(n-k),
  // interleaved to avoid overflow/underflow for moderate n.
  double result = 1.0;
  for (int i = 1; i <= k; ++i) {
    result *= static_cast<double>(n - k + i) / static_cast<double>(i);
    result *= p;
  }
  for (int i = 0; i < n - k; ++i) result *= (1.0 - p);
  return result;
}

AttackerCapability sample_capability(const AttackerPower& power,
                                     util::Rng& rng) {
  validate(power);
  AttackerCapability capability;
  for (int i = 0; i < power.intrusion_attempts; ++i) {
    if (rng.bernoulli(power.intrusion_success)) ++capability.intrusions;
  }
  for (int i = 0; i < power.isolation_attempts; ++i) {
    if (rng.bernoulli(power.isolation_success)) ++capability.isolations;
  }
  return capability;
}

double capability_probability(const AttackerPower& power, int intrusions,
                              int isolations) {
  validate(power);
  return binomial_pmf(power.intrusion_attempts, intrusions,
                      power.intrusion_success) *
         binomial_pmf(power.isolation_attempts, isolations,
                      power.isolation_success);
}

ProbabilisticAttacker::ProbabilisticAttacker(AttackerPower power)
    : power_(power) {
  validate(power_);
}

SystemState ProbabilisticAttacker::attack(const scada::Configuration& config,
                                          SystemState state,
                                          util::Rng& rng) const {
  const AttackerCapability capability = sample_capability(power_, rng);
  return greedy_.attack(config, std::move(state), capability);
}

}  // namespace ct::threat
