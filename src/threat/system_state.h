// System state under a compound threat: per-site availability (after the
// natural disaster and any site-isolation attack) plus server intrusions,
// and the color-coded operational states of the paper's evaluation
// (green / orange / red / gray, §V).
#pragma once

#include <functional>
#include <string_view>
#include <vector>

#include "scada/configuration.h"

namespace ct::threat {

/// Why a site is or is not reachable/operational.
enum class SiteStatus {
  kUp,        ///< Operational and connected.
  kFlooded,   ///< Destroyed/disabled by the natural disaster.
  kIsolated,  ///< Cut off from the network by a site-isolation attack.
};

std::string_view site_status_name(SiteStatus s) noexcept;

/// Operational state of the whole system (paper's color scheme, from [16]).
/// Order matters: later enumerators are strictly worse outcomes.
enum class OperationalState {
  kGreen,   ///< Fully operational.
  kOrange,  ///< Downtime while a cold-backup control center activates.
  kRed,     ///< Not operational until repair / attack ends.
  kGray,    ///< Safety compromised: the system can behave incorrectly.
};

std::string_view state_name(OperationalState s) noexcept;

/// Badness ranking used by the worst-case attacker: green < orange < red <
/// gray.
int badness(OperationalState s) noexcept;

/// The state of one configuration instance after disaster and/or attack.
/// Vectors are aligned with Configuration::sites.
struct SystemState {
  std::vector<SiteStatus> site_status;
  std::vector<int> intrusions;  ///< Compromised replicas per site.

  /// True when the site is operational and connected.
  bool site_functional(std::size_t i) const { return site_status.at(i) == SiteStatus::kUp; }
  int functional_site_count() const noexcept;
  /// Total compromised replicas at functional sites. (Replicas at flooded
  /// or isolated sites cannot participate in — or corrupt — operations.)
  int effective_intrusions() const noexcept;
  int total_intrusions() const noexcept;

  bool operator==(const SystemState&) const = default;
};

/// Site indices of `config` ordered by attack/operation priority: primary
/// control centers first, then backups, then data centers (declaration
/// order within a role). This is both the isolation-target order of the
/// worst-case attacker (§V-B rule 2) and the takeover order of
/// primary-backup architectures.
std::vector<std::size_t> site_priority_order(const scada::Configuration& config);

/// Derives the post-natural-disaster state of a configuration: each site is
/// kFlooded when its hosting asset failed in the realization, else kUp; no
/// intrusions yet. `asset_flooded` is queried once per site.
SystemState post_disaster_state(
    const scada::Configuration& config,
    const std::function<bool(std::string_view asset_id)>& asset_flooded);

}  // namespace ct::threat
