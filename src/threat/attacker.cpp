#include "threat/attacker.h"

#include <algorithm>
#include <stdexcept>

namespace ct::threat {

SystemState GreedyWorstCaseAttacker::attack(const scada::Configuration& config,
                                            SystemState state,
                                            AttackerCapability capability) const {
  if (state.site_status.size() != config.sites.size()) {
    throw std::invalid_argument("attack: state/config site count mismatch");
  }
  if (state.intrusions.size() != config.sites.size()) {
    throw std::invalid_argument("attack: state intrusion vector mismatch");
  }
  const std::vector<std::size_t> order = site_priority_order(config);
  const int need = config.safety_threshold();

  // Rule 1: violate safety outright when possible. Intrusions must land in
  // ONE replication group: for active multisite architectures the group
  // spans every functional hot site; otherwise each site is its own group.
  if (capability.intrusions >= need) {
    if (config.active_multisite) {
      int available = 0;
      for (std::size_t i = 0; i < config.sites.size(); ++i) {
        if (state.site_functional(i) && config.sites[i].hot) {
          available += config.sites[i].replicas;
        }
      }
      if (available >= need) {
        int remaining = need;
        for (const std::size_t i : order) {
          if (remaining == 0) break;
          if (!state.site_functional(i) || !config.sites[i].hot) continue;
          const int take = std::min(remaining, config.sites[i].replicas);
          state.intrusions[i] += take;
          remaining -= take;
        }
        return state;
      }
    } else {
      for (const std::size_t i : order) {
        if (state.site_functional(i) && config.sites[i].replicas >= need) {
          state.intrusions[i] += need;
          return state;
        }
      }
    }
  }

  // Rule 2: isolate the most valuable functioning sites (primary first,
  // then backup, then data centers).
  int isolations = capability.isolations;
  for (const std::size_t i : order) {
    if (isolations == 0) break;
    if (state.site_status[i] == SiteStatus::kUp) {
      state.site_status[i] = SiteStatus::kIsolated;
      --isolations;
    }
  }

  // Rule 3: spend remaining intrusions on servers that would otherwise be
  // functional, reducing operational capacity as much as possible.
  int intrusions = capability.intrusions;
  for (const std::size_t i : order) {
    if (intrusions == 0) break;
    if (!state.site_functional(i)) continue;
    const int room = config.sites[i].replicas - state.intrusions[i];
    const int take = std::min(intrusions, std::max(0, room));
    state.intrusions[i] += take;
    intrusions -= take;
  }
  return state;
}

ExhaustiveAttacker::ExhaustiveAttacker(StateRanker ranker)
    : ranker_(std::move(ranker)) {
  if (!ranker_) {
    throw std::invalid_argument("ExhaustiveAttacker: null state ranker");
  }
}

SystemState ExhaustiveAttacker::attack(const scada::Configuration& config,
                                       SystemState state,
                                       AttackerCapability capability) const {
  if (state.site_status.size() != config.sites.size()) {
    throw std::invalid_argument("attack: state/config site count mismatch");
  }
  last_candidates_ = 0;

  const std::size_t n = config.sites.size();
  SystemState best = state;
  int best_badness = -1;

  const auto consider = [&](const SystemState& candidate) {
    ++last_candidates_;
    const int b = badness(ranker_(candidate));
    if (b > best_badness) {
      best_badness = b;
      best = candidate;
    }
  };

  // Enumerate isolation subsets via bitmask over sites that are currently
  // up, filtered by budget.
  std::vector<std::size_t> up_sites;
  for (std::size_t i = 0; i < n; ++i) {
    if (state.site_status[i] == SiteStatus::kUp) up_sites.push_back(i);
  }

  const std::size_t masks = std::size_t{1} << up_sites.size();
  for (std::size_t mask = 0; mask < masks; ++mask) {
    const int isolated_count = __builtin_popcountll(mask);
    if (isolated_count > capability.isolations) continue;

    SystemState after_isolation = state;
    for (std::size_t b = 0; b < up_sites.size(); ++b) {
      if (mask & (std::size_t{1} << b)) {
        after_isolation.site_status[up_sites[b]] = SiteStatus::kIsolated;
      }
    }

    // Enumerate intrusion placements (per-site counts bounded by replica
    // count; intrusions only land at functional sites).
    const std::function<void(std::size_t, int, SystemState&)> place =
        [&](std::size_t site, int budget, SystemState& current) {
          if (site == n) {
            consider(current);
            return;
          }
          const int room = current.site_functional(site)
                               ? config.sites[site].replicas
                               : 0;
          for (int c = 0; c <= std::min(budget, room); ++c) {
            current.intrusions[site] += c;
            place(site + 1, budget - c, current);
            current.intrusions[site] -= c;
          }
        };
    place(0, capability.intrusions, after_isolation);
  }
  return best;
}

}  // namespace ct::threat
