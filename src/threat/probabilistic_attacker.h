// Probabilistic attacker power — the paper's §VII open question: "we
// assume a worst-case attacker model ... it may give the attacker more
// power than they are likely to have in practice. How to model realistic
// attacker power ... are still open questions."
//
// Model: the attacker ATTEMPTS a bounded number of intrusions and site
// isolations; each attempt independently succeeds with a probability
// (intrusions are hard — they need an implant in a hardened control
// network; isolations need a sustained coremelt/crossfire-style DoS). The
// realized capability is then spent optimally via the paper's greedy
// worst-case targeting, so the model isolates *power* from *skill*: the
// attacker is as smart as the worst case but only as strong as the dice
// allow. p = 1 recovers the paper's deterministic scenarios exactly.
#pragma once

#include "threat/attacker.h"
#include "threat/scenario.h"
#include "util/rng.h"

namespace ct::threat {

/// Attempt budget and per-attempt success probabilities.
struct AttackerPower {
  int intrusion_attempts = 1;
  int isolation_attempts = 1;
  double intrusion_success = 1.0;
  double isolation_success = 1.0;
};

/// Validates the power model (probabilities in [0,1], attempts >= 0);
/// throws std::invalid_argument otherwise.
void validate(const AttackerPower& power);

/// Draws the realized capability: Binomial(attempts, success) per attack
/// class.
AttackerCapability sample_capability(const AttackerPower& power,
                                     util::Rng& rng);

/// Exact probability that the realized capability equals {i, s}.
double capability_probability(const AttackerPower& power, int intrusions,
                              int isolations);

/// Samples a capability and applies the greedy worst-case attack with it.
class ProbabilisticAttacker {
 public:
  explicit ProbabilisticAttacker(AttackerPower power);

  /// One realization of the attack (consumes randomness from `rng`).
  SystemState attack(const scada::Configuration& config, SystemState state,
                     util::Rng& rng) const;

  const AttackerPower& power() const noexcept { return power_; }

 private:
  AttackerPower power_;
  GreedyWorstCaseAttacker greedy_;
};

/// Exact binomial pmf helper (n up to ~60; uses the multiplicative form to
/// stay stable).
double binomial_pmf(int n, int k, double p);

}  // namespace ct::threat
