// Hurricane realization engine: the paper's natural-disaster input stage.
// Each realization draws one storm from the CAT-2 ensemble, runs the surge
// solver over the coastal mesh, applies the shoreline averaging/extension
// post-processing, and records per-asset peak inundation. 1000 realizations
// form the natural-disaster input to the compound-threat framework.
//
// Two execution paths produce bit-identical results (tests/fastpath_test):
//  - run(): the hot path over the MeshBindings precompute — per-step storm
//    kernel, active-node envelope, in-place smoothing, reusable scratch.
//  - run_reference(): the original allocating pipeline, kept as the oracle.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mesh/coastal_builder.h"
#include "mesh/field.h"
#include "storm/generator.h"
#include "surge/fragility.h"
#include "surge/harbor.h"
#include "surge/inundation.h"
#include "surge/mesh_bindings.h"
#include "surge/surge_model.h"
#include "terrain/terrain.h"

namespace ct::surge {

/// Everything that parameterizes the realization pipeline.
struct RealizationConfig {
  mesh::CoastalMeshConfig mesh;
  SurgeConfig surge;
  InundationConfig inundation;
  storm::TrackEnsembleConfig ensemble;
  HarborConfig harbor;
  /// Wind damage to grid assets (extension, default off — see fragility.h).
  WindFragilityConfig fragility;
  /// Shoreline smoothing band and passes (paper §V-A averaging step).
  double smoothing_band_m = 2500.0;
  int smoothing_passes = 2;
  /// Along-shore moving-average half-window in stations (the second part
  /// of the paper's shoreline averaging; 8 stations ~ 16 km).
  int alongshore_window = 8;
  /// Constant water-level offset (m) added to every shoreline station:
  /// models sea-level rise (planning studies) or astronomical tide phase.
  double sea_level_offset_m = 0.0;
  /// Base seed of the whole experiment; realization i is a pure function
  /// of (base_seed, i).
  std::uint64_t base_seed = 20220627;  // DSN-W 2022 date
};

/// One hurricane realization's outcome.
struct HurricaneRealization {
  std::uint64_t index = 0;
  /// Impacts in the same order as the engine's asset list.
  std::vector<AssetImpact> impacts;
  /// Peak surface wind of the drawn storm (m/s).
  double peak_wind_ms = 0.0;
  /// Maximum smoothed shoreline WSE anywhere on the island (m).
  double max_shoreline_wse_m = 0.0;
  /// Shared id -> impacts-position map attached by the engine; lookups
  /// fall back to a linear scan when absent (e.g. cache-deserialized or
  /// hand-built realizations).
  std::shared_ptr<const AssetIndex> asset_index;

  /// True if the asset with this id failed by FLOODING (the paper's
  /// failure mode). O(1) via asset_index when attached, O(n) otherwise.
  bool asset_failed(const std::string& id) const;
  /// Inundation depth for this asset id (0 when absent).
  double asset_depth(const std::string& id) const;
  /// True if the asset failed by wind damage (extension; false when the
  /// fragility stage is disabled).
  bool asset_wind_failed(const std::string& id) const;
  /// Count of wind-damaged assets in this realization.
  std::size_t wind_damage_count() const;

 private:
  /// Impact for `id`, or nullptr when absent.
  const AssetImpact* find_impact(const std::string& id) const;
};

/// Per-worker reusable buffers for the realization hot path. One instance
/// per thread (run() keeps a thread_local one); after the first realization
/// the steady state allocates nothing but the output impact strings.
struct RealizationScratch {
  mesh::NodeField envelope;
  mesh::NodeField field_scratch;
  std::vector<double> shore_wse;
  std::vector<double> station_snapshot;
};

/// Validates a realization's numeric outputs: throws ct::Error{kNumeric}
/// (with realization/seed provenance) when the peak wind, shoreline WSE,
/// or any asset depth is NaN/Inf. The engine calls this on both execution
/// paths so a numerically exploded realization fails ITSELF — a typed,
/// quarantinable error — instead of leaking poisoned values into the
/// outcome distribution. The ensemble runtime also re-validates after
/// fault injection (RuntimeFaultProfile nan rule).
void validate_realization(const HurricaneRealization& realization,
                          std::uint64_t base_seed);

/// Deterministic Monte-Carlo engine. Construct once (builds the mesh and
/// the MeshBindings precompute), then run realizations on demand.
/// Thread-compatible: `run` is const and all shared state is read-only, so
/// realizations may be computed concurrently.
class RealizationEngine {
 public:
  RealizationEngine(std::shared_ptr<const terrain::Terrain> terrain,
                    std::vector<ExposedAsset> assets,
                    RealizationConfig config = {});

  /// Runs realization `index` (deterministic in (config.base_seed, index))
  /// on the hot path, reusing a thread-local scratch. Bit-identical to
  /// run_reference.
  HurricaneRealization run(std::uint64_t index) const;

  /// Hot path with caller-owned scratch (for callers managing worker
  /// lifetimes themselves).
  HurricaneRealization run(std::uint64_t index,
                           RealizationScratch& scratch) const;

  /// The original allocating pipeline, kept as the equivalence oracle and
  /// for apples-to-apples benchmarking.
  HurricaneRealization run_reference(std::uint64_t index) const;

  /// Runs realizations [0, count) serially.
  std::vector<HurricaneRealization> run_batch(std::size_t count) const;

  /// Runs realizations [0, count) across `threads` worker threads
  /// (0 = hardware concurrency). Bit-identical to run_batch: realization i
  /// is a pure function of (seed, i), so scheduling cannot change results.
  std::vector<HurricaneRealization> run_batch_parallel(
      std::size_t count, unsigned threads = 0) const;

  const std::vector<ExposedAsset>& assets() const noexcept { return assets_; }
  const mesh::CoastalMesh& coastal_mesh() const noexcept { return cm_; }
  const RealizationConfig& config() const noexcept { return config_; }
  const terrain::Terrain& terrain() const noexcept { return *terrain_; }
  /// Shelter classification of shoreline stations (harbor treatment).
  const std::vector<bool>& sheltered() const noexcept { return sheltered_; }
  /// The per-(terrain, mesh config) precompute shared by all realizations.
  const MeshBindings& bindings() const noexcept { return bindings_; }

 private:
  /// Wind-fragility stage shared by both paths (track-scan + sampling).
  void apply_wind_fragility(const storm::StormTrack& track,
                            std::uint64_t index,
                            HurricaneRealization& out) const;

  std::shared_ptr<const terrain::Terrain> terrain_;
  std::vector<ExposedAsset> assets_;
  RealizationConfig config_;
  mesh::CoastalMesh cm_;
  storm::TrackGenerator generator_;
  SurgeSolver solver_;
  InundationMapper mapper_;
  MeshBindings bindings_;
  std::vector<bool> sheltered_;
  std::vector<std::size_t> harbor_sources_;
};

}  // namespace ct::surge
