#include "surge/inundation.h"

#include <cmath>
#include <stdexcept>

namespace ct::surge {

namespace {
std::vector<geo::Vec2> station_positions(const mesh::CoastalMesh& cm) {
  std::vector<geo::Vec2> out;
  out.reserve(cm.stations.size());
  for (const auto& s : cm.stations) out.push_back(s.position);
  return out;
}
}  // namespace

InundationMapper::InundationMapper(const mesh::CoastalMesh& cm,
                                   const geo::EnuProjection& proj,
                                   InundationConfig config)
    : cm_(cm), proj_(proj), config_(config),
      station_index_(station_positions(cm), 4000.0) {
  if (config_.decay_length_m <= 0.0) {
    throw std::invalid_argument("InundationMapper: decay length must be > 0");
  }
}

AssetImpact InundationMapper::impact(
    const ExposedAsset& asset, const std::vector<double>& shoreline_wse) const {
  if (shoreline_wse.size() != cm_.stations.size()) {
    throw std::invalid_argument("InundationMapper: WSE/station size mismatch");
  }
  const geo::Vec2 pos = proj_.to_enu(asset.location);
  const std::size_t station = station_index_.nearest(pos);

  AssetImpact out;
  out.asset_id = asset.id;
  out.shoreline_station = station;
  out.shoreline_wse_m = shoreline_wse[station];

  const double dist = geo::distance(pos, cm_.stations[station].position);
  out.water_level_m =
      out.shoreline_wse_m * std::exp(-dist / config_.decay_length_m);
  out.inundation_depth_m =
      std::max(0.0, out.water_level_m - asset.ground_elevation_m);
  out.failed = out.inundation_depth_m > config_.failure_threshold_m;
  return out;
}

std::vector<AssetImpact> InundationMapper::impacts(
    const std::vector<ExposedAsset>& assets,
    const std::vector<double>& shoreline_wse) const {
  std::vector<AssetImpact> out;
  out.reserve(assets.size());
  for (const ExposedAsset& a : assets) out.push_back(impact(a, shoreline_wse));
  return out;
}

}  // namespace ct::surge
