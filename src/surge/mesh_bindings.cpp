#include "surge/mesh_bindings.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "geo/polygon.h"
#include "storm/holland.h"

namespace ct::surge {

MeshBindings::MeshBindings(const mesh::CoastalMesh& cm,
                           const geo::EnuProjection& proj,
                           const SurgeConfig& surge,
                           const InundationMapper& mapper,
                           const std::vector<ExposedAsset>& assets,
                           double smoothing_band_m, int smoothing_passes)
    : cm_(cm), surge_(surge), inundation_(mapper.config()) {
  // Far-skip geometry, computed exactly as SurgeSolver::max_envelope does.
  geo::BBox box;
  for (const mesh::Node& node : cm.mesh.nodes()) box.expand(node.position);
  mesh_center_ = box.center();
  mesh_radius_ = std::max(box.width(), box.height()) / 2.0 +
                 surge_.max_considered_distance_m;

  plan_ = mesh::make_shoreline_plan(cm, smoothing_band_m, smoothing_passes);

  // Active set: the only values the pipeline consumes are the per-station
  // shoreline values AFTER the averaging passes (alongshore averaging,
  // harbor transfer, impacts, and max_shoreline_wse_m all read those; the
  // extension step overwrites onshore nodes). A node's initial envelope
  // value can reach a shore node only by flowing through smoothing-band
  // nodes, one hop per pass: S_0 = shore nodes, S_k = S_{k-1} union
  // neighbors(S_{k-1} intersect band). Everything outside S_passes is
  // write-only in the legacy pipeline and never surfaces in the output.
  std::vector<char> active(cm.mesh.node_count(), 0);
  std::vector<char> in_band(cm.mesh.node_count(), 0);
  for (const mesh::NodeId n : plan_.band_nodes) in_band[n] = 1;
  std::vector<mesh::NodeId> frontier;
  for (const mesh::NodeId n : cm.shore_nodes) {
    if (!active[n]) {
      active[n] = 1;
      frontier.push_back(n);
    }
  }
  std::vector<mesh::NodeId> next;
  for (int pass = 0; pass < smoothing_passes && !frontier.empty(); ++pass) {
    next.clear();
    for (const mesh::NodeId n : frontier) {
      if (!in_band[n]) continue;  // only band nodes are re-averaged
      for (const mesh::NodeId m : cm.mesh.neighbors(n)) {
        if (!active[m]) {
          active[m] = 1;
          next.push_back(m);
        }
      }
    }
    frontier.swap(next);
  }

  for (mesh::NodeId n = 0; n < cm.mesh.node_count(); ++n) {
    if (!active[n]) continue;
    const mesh::Node& node = cm.mesh.node(n);
    active_nodes_.push_back(n);
    active_positions_.push_back(node.position);
    active_onshore_.push_back(
        cm.stations[cm.station_of_node[n]].outward_normal * -1.0);
    const double depth = std::max(surge_.min_depth_m, -node.elevation_m);
    active_gdepth_.push_back(kGravity * depth);
  }

  auto index = std::make_shared<AssetIndex>();
  asset_ids_.reserve(assets.size());
  asset_ground_m_.reserve(assets.size());
  stencils_.reserve(assets.size());
  for (std::size_t a = 0; a < assets.size(); ++a) {
    const ExposedAsset& asset = assets[a];
    asset_ids_.push_back(asset.id);
    asset_ground_m_.push_back(asset.ground_elevation_m);
    index->emplace(asset.id, static_cast<std::uint32_t>(a));  // first wins

    AssetStencil s;
    s.enu = proj.to_enu(asset.location);
    s.station = mapper.nearest_station(s.enu);
    s.station_distance_m = geo::distance(s.enu, cm.stations[s.station].position);
    s.decay = std::exp(-s.station_distance_m / inundation_.decay_length_m);
    s.nearest_node = cm.mesh.nearest_node(s.enu);
    if (const auto bary = cm.mesh.locate(s.enu)) {
      s.inside_mesh = true;
      s.element = bary->element;
      s.stencil_nodes = cm.mesh.element(bary->element).nodes;
      s.stencil_weights = bary->weights;
    }
    stencils_.push_back(s);
  }
  asset_index_ = std::move(index);
}

void MeshBindings::accumulate_envelope(const storm::StormTrack& track,
                                       const geo::EnuProjection& proj,
                                       mesh::NodeField& envelope) const {
  envelope.assign(cm_.mesh.node_count(), 0.0);
  const std::size_t active_count = active_nodes_.size();
  // Per-realization constants, folded exactly as the reference solver
  // writes them: (exponent - 1.0) feeds pow unchanged, and rho*g is the
  // same product the inverse-barometer term divides by.
  const double exponent_m1 = surge_.wind_setup_exponent - 1.0;
  const double rho_g = kWaterDensity * kGravity;

  for (double t = track.start_time(); t <= track.end_time();
       t += surge_.dt_s) {
    const storm::StormState state = track.state_at(t, proj);
    const geo::Vec2 center = proj.to_enu(state.center);
    if (geo::distance(center, mesh_center_) > mesh_radius_) continue;

    const storm::StormStepKernel kernel(surge_.wind_options, state.vortex,
                                        center, state.translation_ms);
    const double ambient_pa = state.vortex.ambient_pressure_pa;
    for (std::size_t k = 0; k < active_count; ++k) {
      const storm::WindSample w = kernel.sample(active_positions_[k]);
      const double u_on =
          std::max(0.0, w.velocity_ms.dot(active_onshore_[k]));
      const double eta_wind = surge_.wind_setup_scale_m * u_on *
                              std::pow(w.speed_ms, exponent_m1) /
                              active_gdepth_[k];
      const double eta_pressure =
          std::max(0.0, ambient_pa - w.pressure_pa) / rho_g;
      const double eta_wave = surge_.wave_setup_per_ms * u_on;
      const double wse = eta_wind + eta_pressure + eta_wave;
      double& env = envelope[active_nodes_[k]];
      env = std::max(env, wse);
    }
  }
}

void MeshBindings::impacts_into(const std::vector<double>& shoreline_wse,
                                std::vector<AssetImpact>& out) const {
  if (shoreline_wse.size() != cm_.stations.size()) {
    throw std::invalid_argument("MeshBindings: WSE/station size mismatch");
  }
  out.clear();
  out.reserve(asset_ids_.size());
  for (std::size_t a = 0; a < asset_ids_.size(); ++a) {
    const AssetStencil& s = stencils_[a];
    AssetImpact impact;
    impact.asset_id = asset_ids_[a];
    impact.shoreline_station = s.station;
    impact.shoreline_wse_m = shoreline_wse[s.station];
    impact.water_level_m = impact.shoreline_wse_m * s.decay;
    impact.inundation_depth_m =
        std::max(0.0, impact.water_level_m - asset_ground_m_[a]);
    impact.failed = impact.inundation_depth_m > inundation_.failure_threshold_m;
    out.push_back(std::move(impact));
  }
}

double MeshBindings::interpolate_at(const mesh::NodeField& field,
                                    std::size_t asset) const {
  if (field.size() != cm_.mesh.node_count()) {
    throw std::invalid_argument("MeshBindings::interpolate_at: size mismatch");
  }
  const AssetStencil& s = stencils_.at(asset);
  if (s.inside_mesh) {
    double v = 0.0;
    for (int i = 0; i < 3; ++i) {
      v += s.stencil_weights[i] * field[s.stencil_nodes[i]];
    }
    return v;
  }
  return field[s.nearest_node];
}

void MeshBindings::digest_into(util::Digest& d) const {
  d.str("ct-mesh-bindings");
  d.f64(mesh_center_.x).f64(mesh_center_.y).f64(mesh_radius_);
  d.u64(plan_.band_nodes.size())
      .u64(plan_.extend_targets.size())
      .i64(plan_.passes);
  d.u64(active_nodes_.size());
  for (std::size_t k = 0; k < active_nodes_.size(); ++k) {
    d.u64(active_nodes_[k])
        .f64(active_positions_[k].x)
        .f64(active_positions_[k].y)
        .f64(active_onshore_[k].x)
        .f64(active_onshore_[k].y)
        .f64(active_gdepth_[k]);
  }
  d.u64(stencils_.size());
  for (const AssetStencil& s : stencils_) {
    d.u64(s.station)
        .f64(s.station_distance_m)
        .f64(s.decay)
        .u64(s.nearest_node)
        .boolean(s.inside_mesh);
    for (int i = 0; i < 3; ++i) {
      d.u64(s.stencil_nodes[i]).f64(s.stencil_weights[i]);
    }
  }
}

}  // namespace ct::surge
