// Parametric storm-surge solver over the coastal mesh. Stands in for the
// ADCIRC hydrodynamic run in the paper's pipeline: for each time step of a
// storm track it evaluates the Holland wind/pressure field at every wet
// mesh node and converts it to a water-surface elevation via the standard
// parametric decomposition
//
//   WSE = wind setup + inverse barometer + wave setup
//
// with wind setup ~ u_onshore * |u| / (g * depth)  (shallow-water stress
// balance) and inverse barometer ~ dp / (rho g). The maximum over time per
// node (the "maximum envelope of water", MEOW) is the solver's output,
// matching how inundation studies consume ADCIRC results.
#pragma once

#include "mesh/coastal_builder.h"
#include "storm/holland.h"
#include "storm/track.h"

namespace ct::surge {

/// Physical constants of the surge decomposition. In the header so the
/// precomputed hot path (surge/mesh_bindings.h) folds exactly the same
/// values the reference solver uses — a prerequisite for bit-identity.
inline constexpr double kGravity = 9.81;        // m/s^2
inline constexpr double kWaterDensity = 1025.0; // kg/m^3 (sea water)

/// Tunable physics constants. Defaults are calibrated (see
/// tests/surge/calibration_test.cpp) so that a direct CAT-2 landfall
/// produces 1.5-3 m of surge on the facing shore, consistent with Hawaii
/// planning guidance, and so the Oahu case study reproduces the paper's
/// ~9.5% Honolulu flood probability.
struct SurgeConfig {
  /// Simulation time step (s).
  double dt_s = 1800.0;
  /// Wind-setup scale (m):
  ///   eta_wind = scale * u_on * |u|^(exponent-1) / (g * depth).
  /// The default exponent of 3 reflects the growth of the air-sea drag
  /// coefficient with wind speed (stress ~ Cd(u) u^2 with Cd ~ u), which
  /// sharpens the distinction between a direct hit and a distant pass.
  double wind_setup_scale_m = 8.0e-4;
  double wind_setup_exponent = 3.0;
  /// Wave setup per m/s of onshore wind (m s/m).
  double wave_setup_per_ms = 0.006;
  /// Depth floor so the setup term stays finite at the shoreline (m).
  double min_depth_m = 2.0;
  /// Storm positions farther than this from the mesh are skipped (m).
  double max_considered_distance_m = 350000.0;
  /// Holland wind-field options (surface reduction, inflow, asymmetry).
  storm::HollandWindField::Options wind_options{};
};

/// Computes the maximum water-surface-elevation envelope (one value per
/// mesh node, meters above MSL) produced by `track` over the coastal mesh.
/// Land nodes receive the same formula evaluated with the floor depth; the
/// caller is expected to post-process with
/// mesh::shoreline_average_and_extend (as the paper did) before using
/// onshore values.
class SurgeSolver {
 public:
  explicit SurgeSolver(SurgeConfig config = {}) : config_(config) {}

  mesh::NodeField max_envelope(const mesh::CoastalMesh& cm,
                               const storm::StormTrack& track,
                               const geo::EnuProjection& proj) const;

  /// Instantaneous WSE field at one moment (used by tests and the DES
  /// replay example to inspect the time evolution).
  mesh::NodeField instantaneous(const mesh::CoastalMesh& cm,
                                const storm::StormState& state,
                                const geo::EnuProjection& proj) const;

  const SurgeConfig& config() const noexcept { return config_; }

 private:
  SurgeConfig config_;
};

}  // namespace ct::surge
