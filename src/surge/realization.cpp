#include "surge/realization.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "util/error.h"
#include "util/log.h"
#include "util/rng.h"

namespace ct::surge {

const AssetImpact* HurricaneRealization::find_impact(
    const std::string& id) const {
  if (asset_index) {
    const auto it = asset_index->find(id);
    if (it != asset_index->end()) {
      const std::size_t pos = it->second;
      // Verify before trusting: user code may hold a filtered/reordered
      // impacts vector next to the engine's index. Fall through to the
      // scan on any mismatch.
      if (pos < impacts.size() && impacts[pos].asset_id == id) {
        return &impacts[pos];
      }
    } else {
      // The index covers every engine asset, but only trust a miss when
      // the impacts list still matches the engine's asset count.
      if (impacts.size() == asset_index->size()) return nullptr;
    }
  }
  for (const AssetImpact& impact : impacts) {
    if (impact.asset_id == id) return &impact;
  }
  return nullptr;
}

bool HurricaneRealization::asset_failed(const std::string& id) const {
  const AssetImpact* impact = find_impact(id);
  return impact != nullptr && impact->failed;
}

double HurricaneRealization::asset_depth(const std::string& id) const {
  const AssetImpact* impact = find_impact(id);
  return impact != nullptr ? impact->inundation_depth_m : 0.0;
}

bool HurricaneRealization::asset_wind_failed(const std::string& id) const {
  const AssetImpact* impact = find_impact(id);
  return impact != nullptr && impact->wind_failed;
}

std::size_t HurricaneRealization::wind_damage_count() const {
  std::size_t count = 0;
  for (const AssetImpact& impact : impacts) {
    if (impact.wind_failed) ++count;
  }
  return count;
}

namespace {
const terrain::Terrain& require_terrain(
    const std::shared_ptr<const terrain::Terrain>& terrain) {
  if (!terrain) throw std::invalid_argument("RealizationEngine: null terrain");
  return *terrain;
}

/// Maximum of `values` with a fused finiteness check. A plain max_element
/// can silently SKIP a NaN (NaN comparisons are false both ways), so the
/// guard must ride the same scan. Bit-identical to max_element on finite
/// data. Returns 0 for an empty vector.
double guarded_max(const std::vector<double>& values, std::uint64_t index,
                   std::uint64_t base_seed) {
  double max = 0.0;
  bool first = true;
  for (const double v : values) {
    if (!std::isfinite(v)) {
      throw util::Error(util::ErrorCode::kNumeric, "surge",
                        "non-finite shoreline WSE", index, base_seed);
    }
    if (first || v > max) {
      max = v;
      first = false;
    }
  }
  return max;
}
}  // namespace

void validate_realization(const HurricaneRealization& realization,
                          std::uint64_t base_seed) {
  const auto fail = [&](const char* what) {
    throw util::Error(util::ErrorCode::kNumeric, "surge", what,
                      realization.index, base_seed);
  };
  if (!std::isfinite(realization.peak_wind_ms)) {
    fail("non-finite peak surface wind");
  }
  if (!std::isfinite(realization.max_shoreline_wse_m)) {
    fail("non-finite max shoreline WSE");
  }
  for (const AssetImpact& impact : realization.impacts) {
    if (!std::isfinite(impact.inundation_depth_m) ||
        !std::isfinite(impact.peak_wind_ms)) {
      fail("non-finite asset impact");
    }
  }
}

RealizationEngine::RealizationEngine(
    std::shared_ptr<const terrain::Terrain> terrain,
    std::vector<ExposedAsset> assets, RealizationConfig config)
    : terrain_(std::move(terrain)), assets_(std::move(assets)),
      config_(config),
      cm_(mesh::build_coastal_mesh(require_terrain(terrain_), config_.mesh)),
      generator_(config_.ensemble), solver_(config_.surge),
      mapper_(cm_, terrain_->projection(), config_.inundation),
      bindings_(cm_, terrain_->projection(), config_.surge, mapper_, assets_,
                config_.smoothing_band_m, config_.smoothing_passes) {
  if (config_.harbor.enabled) {
    sheltered_ = sheltered_stations(cm_, *terrain_, config_.harbor);
    harbor_sources_ = harbor_source_map(cm_, sheltered_);
  } else {
    sheltered_.assign(cm_.stations.size(), false);
    harbor_sources_.resize(cm_.stations.size());
    for (std::size_t i = 0; i < harbor_sources_.size(); ++i) {
      harbor_sources_[i] = i;
    }
  }
  CT_LOG(kInfo, "surge") << "coastal mesh: " << cm_.mesh.node_count()
                         << " nodes, " << cm_.mesh.element_count()
                         << " elements, " << cm_.stations.size()
                         << " shoreline stations, "
                         << bindings_.active_nodes().size()
                         << " active surge nodes";
}

void RealizationEngine::apply_wind_fragility(const storm::StormTrack& track,
                                             std::uint64_t index,
                                             HurricaneRealization& out) const {
  const geo::EnuProjection& proj = terrain_->projection();
  const storm::HollandWindField wind_field(config_.surge.wind_options);
  util::Rng rng =
      util::Rng(config_.base_seed, "wind-damage").child("realization", index);
  for (std::size_t a = 0; a < assets_.size(); ++a) {
    AssetImpact& impact = out.impacts[a];
    impact.peak_wind_ms =
        peak_wind_at(track, proj, proj.to_enu(assets_[a].location),
                     wind_field, config_.fragility.scan_dt_s);
    const FragilityCurve* curve = nullptr;
    switch (assets_[a].exposure_class) {
      case ExposureClass::kFacility: break;  // wind-hardened building
      case ExposureClass::kPowerPlant:
        curve = &config_.fragility.power_plant;
        break;
      case ExposureClass::kSubstation:
        curve = &config_.fragility.substation;
        break;
    }
    if (curve != nullptr) {
      impact.wind_failed =
          rng.bernoulli(damage_probability(*curve, impact.peak_wind_ms));
    }
  }
}

HurricaneRealization RealizationEngine::run(std::uint64_t index) const {
  // One scratch per worker thread: TaskPool workers, run_batch_parallel
  // threads, and the caller's own thread each reuse their own buffers.
  thread_local RealizationScratch scratch;
  return run(index, scratch);
}

HurricaneRealization RealizationEngine::run(std::uint64_t index,
                                            RealizationScratch& scratch) const {
  const storm::StormTrack track =
      generator_.generate(config_.base_seed, index);
  const geo::EnuProjection& proj = terrain_->projection();

  bindings_.accumulate_envelope(track, proj, scratch.envelope);
  mesh::shoreline_average_and_extend(cm_, bindings_.shoreline_plan(),
                                     scratch.envelope, scratch.field_scratch);
  mesh::shoreline_values(cm_, scratch.envelope, scratch.shore_wse);
  alongshore_average(scratch.shore_wse, sheltered_, config_.alongshore_window,
                     scratch.station_snapshot);
  if (config_.sea_level_offset_m != 0.0) {
    for (double& wse : scratch.shore_wse) wse += config_.sea_level_offset_m;
  }
  if (config_.harbor.enabled) {
    apply_harbor_transfer(scratch.shore_wse, sheltered_, harbor_sources_,
                          config_.harbor.amplification,
                          scratch.station_snapshot);
  }

  HurricaneRealization out;
  out.index = index;
  bindings_.impacts_into(scratch.shore_wse, out.impacts);
  out.asset_index = bindings_.asset_index();
  out.peak_wind_ms = track.peak_surface_wind_ms();

  // Optional wind-fragility stage (extension; see fragility.h).
  if (config_.fragility.enabled) {
    apply_wind_fragility(track, index, out);
  }
  out.max_shoreline_wse_m =
      guarded_max(scratch.shore_wse, index, config_.base_seed);
  validate_realization(out, config_.base_seed);
  return out;
}

HurricaneRealization RealizationEngine::run_reference(
    std::uint64_t index) const {
  const storm::StormTrack track =
      generator_.generate(config_.base_seed, index);
  const geo::EnuProjection& proj = terrain_->projection();

  mesh::NodeField envelope = solver_.max_envelope(cm_, track, proj);
  envelope = mesh::shoreline_average_and_extend(
      cm_, envelope, config_.smoothing_band_m, config_.smoothing_passes);
  std::vector<double> shore_wse = mesh::shoreline_values(cm_, envelope);
  alongshore_average(shore_wse, sheltered_, config_.alongshore_window);
  if (config_.sea_level_offset_m != 0.0) {
    for (double& wse : shore_wse) wse += config_.sea_level_offset_m;
  }
  if (config_.harbor.enabled) {
    apply_harbor_transfer(shore_wse, sheltered_, harbor_sources_,
                          config_.harbor.amplification);
  }

  HurricaneRealization out;
  out.index = index;
  out.impacts = mapper_.impacts(assets_, shore_wse);
  out.asset_index = bindings_.asset_index();
  out.peak_wind_ms = track.peak_surface_wind_ms();

  if (config_.fragility.enabled) {
    apply_wind_fragility(track, index, out);
  }
  out.max_shoreline_wse_m = guarded_max(shore_wse, index, config_.base_seed);
  validate_realization(out, config_.base_seed);
  return out;
}

std::vector<HurricaneRealization> RealizationEngine::run_batch(
    std::size_t count) const {
  std::vector<HurricaneRealization> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(run(static_cast<std::uint64_t>(i)));
  }
  return out;
}

std::vector<HurricaneRealization> RealizationEngine::run_batch_parallel(
    std::size_t count, unsigned threads) const {
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads <= 1 || count < 2) return run_batch(count);
  threads = std::min<unsigned>(threads, static_cast<unsigned>(count));

  std::vector<HurricaneRealization> out(count);
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    RealizationScratch scratch;
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      out[i] = run(static_cast<std::uint64_t>(i), scratch);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return out;
}

}  // namespace ct::surge
