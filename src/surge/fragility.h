// Wind fragility of grid assets — an EXTENSION beyond the paper's scope.
// The paper: "the heavy rain and high winds produced by a hurricane may
// damage additional components of the power grid infrastructure (e.g.
// substations, transmission lines) ... However, we do not currently
// consider these in our model, as we focus on the SCADA control system."
// This module adds that deferred channel: a standard lognormal fragility
// curve P(damage | peak gust) in the style of the resilience literature
// the paper cites (Panteli et al. [8]). Disabled by default; when enabled
// the realization engine records wind damage alongside inundation so
// studies can count how much of the grid the SCADA system would have to
// manage dark.
#pragma once

#include "storm/holland.h"
#include "storm/track.h"

namespace ct::surge {

/// Lognormal fragility curve: P(fail | v) = Phi((ln v - ln median) / beta).
struct FragilityCurve {
  /// Wind speed with 50% damage probability (m/s, 10-m sustained).
  double median_wind_ms = 55.0;
  /// Lognormal dispersion.
  double beta = 0.25;
};

/// Damage probability at a given sustained wind speed (0 for v <= 0).
double damage_probability(const FragilityCurve& curve, double wind_ms);

/// Wind-fragility stage configuration.
struct WindFragilityConfig {
  /// Master switch; the paper's analysis runs with this off.
  bool enabled = false;
  FragilityCurve substation;
  FragilityCurve power_plant{60.0, 0.25};  // plants are more robust
  /// Time step when scanning the track for the peak wind at an asset (s).
  double scan_dt_s = 1800.0;
};

/// Peak sustained wind over the track at a fixed point (ENU frame of proj).
double peak_wind_at(const storm::StormTrack& track,
                    const geo::EnuProjection& proj, geo::Vec2 position,
                    const storm::HollandWindField& field, double dt_s);

}  // namespace ct::surge
