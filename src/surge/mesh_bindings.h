// Per-(terrain, mesh config) precompute for the realization hot path.
//
// Every one of the 1000 realizations used to re-derive the same facts from
// the mesh: which nodes can ever influence the shoreline output, each
// node's onshore direction and depth floor, which station/triangle each
// asset binds to, and the inland decay factor. MeshBindings freezes all of
// that once per RealizationEngine (shared read-only across realizations
// and threads) and exposes allocation-free kernels over the frozen arrays.
//
// Equivalence contract: every kernel here is BIT-IDENTICAL to the legacy
// path it replaces for all values the pipeline consumes. The envelope is
// only ever read at the smoothing band, its one-hop neighbors, and the
// shoreline nodes (the extension step overwrites onshore nodes and the
// output is the per-station shoreline WSE), so `accumulate_envelope`
// evaluates exactly those nodes with the same IEEE-754 operation sequence
// the reference SurgeSolver uses and leaves the rest at 0. See DESIGN.md
// §10 for the full argument.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "geo/geopoint.h"
#include "geo/vec2.h"
#include "mesh/coastal_builder.h"
#include "mesh/field.h"
#include "storm/track.h"
#include "surge/inundation.h"
#include "surge/surge_model.h"
#include "util/digest.h"

namespace ct::surge {

/// Frozen binding of one asset to the mesh and shoreline.
struct AssetStencil {
  /// Shoreline station the asset draws water from (same index the
  /// InundationMapper's nearest-station query returns).
  std::size_t station = 0;
  double station_distance_m = 0.0;
  /// Precomputed inland decay exp(-distance / decay_length) — the exact
  /// factor the legacy impact() computes per realization.
  double decay = 1.0;
  /// Asset position in the ENU frame.
  geo::Vec2 enu;
  /// Nearest mesh node (interpolation fallback outside the band).
  mesh::NodeId nearest_node = 0;
  /// Barycentric stencil when the asset lies inside the meshed band.
  bool inside_mesh = false;
  mesh::ElementId element = 0;
  std::array<mesh::NodeId, 3> stencil_nodes{};
  std::array<double, 3> stencil_weights{};
};

/// Asset id -> position in the engine's asset list (first occurrence wins
/// for duplicate ids, matching the legacy linear scan).
using AssetIndex = std::unordered_map<std::string, std::uint32_t>;

class MeshBindings {
 public:
  /// Builds the precompute. `cm`, `mapper`, and `proj` must outlive the
  /// bindings (the RealizationEngine owns all three).
  MeshBindings(const mesh::CoastalMesh& cm, const geo::EnuProjection& proj,
               const SurgeConfig& surge, const InundationMapper& mapper,
               const std::vector<ExposedAsset>& assets,
               double smoothing_band_m, int smoothing_passes);

  /// Writes the MEOW envelope of `track` into `envelope` (resized to the
  /// node count; non-active nodes stay 0). Bit-equal on every consumed
  /// node to SurgeSolver::max_envelope with the same config. Thread-safe:
  /// const over frozen arrays, all mutation goes to `envelope`.
  void accumulate_envelope(const storm::StormTrack& track,
                           const geo::EnuProjection& proj,
                           mesh::NodeField& envelope) const;

  /// Per-asset impacts from the smoothed shoreline WSE, written into `out`
  /// (cleared first). Bit-equal to InundationMapper::impacts.
  void impacts_into(const std::vector<double>& shoreline_wse,
                    std::vector<AssetImpact>& out) const;

  /// Samples a node field at asset `asset` via the frozen barycentric
  /// stencil; bit-equal to TriMesh::interpolate at the asset position.
  double interpolate_at(const mesh::NodeField& field, std::size_t asset) const;

  const mesh::ShorelinePlan& shoreline_plan() const noexcept { return plan_; }
  /// Nodes whose envelope values the pipeline can consume (ascending).
  const std::vector<mesh::NodeId>& active_nodes() const noexcept {
    return active_nodes_;
  }
  const std::vector<AssetStencil>& stencils() const noexcept {
    return stencils_;
  }
  /// Shared id->index map handed to every realization for O(1) lookups.
  const std::shared_ptr<const AssetIndex>& asset_index() const noexcept {
    return asset_index_;
  }

  /// Folds the frozen content into a digest. Mixed into the engine-batch
  /// cache key so any terrain- or mesh-derived change to the precompute
  /// (stations, depths, stencils, smoothing plan) invalidates disk caches.
  void digest_into(util::Digest& d) const;

 private:
  const mesh::CoastalMesh& cm_;
  SurgeConfig surge_;
  InundationConfig inundation_;

  // Far-skip geometry, identical to SurgeSolver::max_envelope.
  geo::Vec2 mesh_center_;
  double mesh_radius_ = 0.0;

  mesh::ShorelinePlan plan_;

  // Structure-of-arrays over the active node set.
  std::vector<mesh::NodeId> active_nodes_;
  std::vector<geo::Vec2> active_positions_;
  std::vector<geo::Vec2> active_onshore_;  ///< -outward_normal of the station
  std::vector<double> active_gdepth_;      ///< kGravity * floored depth

  std::vector<std::string> asset_ids_;
  std::vector<double> asset_ground_m_;
  std::vector<AssetStencil> stencils_;
  std::shared_ptr<const AssetIndex> asset_index_;
};

}  // namespace ct::surge
