#include "surge/fragility.h"

#include <cmath>
#include <stdexcept>

namespace ct::surge {

double damage_probability(const FragilityCurve& curve, double wind_ms) {
  if (curve.median_wind_ms <= 0.0 || curve.beta <= 0.0) {
    throw std::invalid_argument("FragilityCurve: median and beta must be > 0");
  }
  if (wind_ms <= 0.0) return 0.0;
  const double z =
      (std::log(wind_ms) - std::log(curve.median_wind_ms)) / curve.beta;
  // Standard normal CDF via erfc for numerical stability in the tails.
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double peak_wind_at(const storm::StormTrack& track,
                    const geo::EnuProjection& proj, geo::Vec2 position,
                    const storm::HollandWindField& field, double dt_s) {
  if (dt_s <= 0.0) throw std::invalid_argument("peak_wind_at: dt must be > 0");
  double peak = 0.0;
  for (double t = track.start_time(); t <= track.end_time(); t += dt_s) {
    const storm::StormState state = track.state_at(t, proj);
    const storm::WindSample sample = field.sample(
        state.vortex, proj.to_enu(state.center), state.translation_ms,
        position);
    peak = std::max(peak, sample.speed_ms);
  }
  return peak;
}

}  // namespace ct::surge
