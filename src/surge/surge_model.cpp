#include "surge/surge_model.h"

#include <algorithm>
#include <cmath>

namespace ct::surge {

mesh::NodeField SurgeSolver::instantaneous(const mesh::CoastalMesh& cm,
                                           const storm::StormState& state,
                                           const geo::EnuProjection& proj) const {
  const storm::HollandWindField wind_field(config_.wind_options);
  const geo::Vec2 center = proj.to_enu(state.center);
  const std::size_t n = cm.mesh.node_count();
  mesh::NodeField wse(n, 0.0);

  for (mesh::NodeId i = 0; i < n; ++i) {
    const mesh::Node& node = cm.mesh.node(i);
    const storm::WindSample w =
        wind_field.sample(state.vortex, center, state.translation_ms,
                          node.position);

    // Onshore direction: opposite the station's outward normal.
    const geo::Vec2 onshore =
        cm.stations[cm.station_of_node[i]].outward_normal * -1.0;
    const double u_on = std::max(0.0, w.velocity_ms.dot(onshore));

    const double depth = std::max(config_.min_depth_m, -node.elevation_m);
    const double eta_wind =
        config_.wind_setup_scale_m * u_on *
        std::pow(w.speed_ms, config_.wind_setup_exponent - 1.0) /
        (kGravity * depth);
    const double eta_pressure =
        std::max(0.0, state.vortex.ambient_pressure_pa - w.pressure_pa) /
        (kWaterDensity * kGravity);
    const double eta_wave = config_.wave_setup_per_ms * u_on;

    wse[i] = eta_wind + eta_pressure + eta_wave;
  }
  return wse;
}

mesh::NodeField SurgeSolver::max_envelope(const mesh::CoastalMesh& cm,
                                          const storm::StormTrack& track,
                                          const geo::EnuProjection& proj) const {
  const std::size_t n = cm.mesh.node_count();
  mesh::NodeField envelope(n, 0.0);

  // Skip time steps while the storm is too far away to matter.
  geo::BBox box;
  for (const mesh::Node& node : cm.mesh.nodes()) box.expand(node.position);
  const geo::Vec2 mesh_center = box.center();
  const double mesh_radius =
      std::max(box.width(), box.height()) / 2.0 +
      config_.max_considered_distance_m;

  for (double t = track.start_time(); t <= track.end_time();
       t += config_.dt_s) {
    const storm::StormState state = track.state_at(t, proj);
    const geo::Vec2 center = proj.to_enu(state.center);
    if (geo::distance(center, mesh_center) > mesh_radius) continue;

    const mesh::NodeField step = instantaneous(cm, state, proj);
    for (std::size_t i = 0; i < n; ++i) {
      envelope[i] = std::max(envelope[i], step[i]);
    }
  }
  return envelope;
}

}  // namespace ct::surge
