// Harbor/embayment treatment of shoreline surge. Wind setup is an
// open-coast phenomenon; inside a narrow harbor or loch the water level
// follows the open coast at the mouth (propagated as a long wave), often
// slightly amplified by funneling.
//
// A station is SHELTERED when the ray cast seaward along its outward
// normal re-enters land within a short distance — i.e. the station faces
// another shore across a narrow channel, as inside Pearl Harbor. A station
// on a broad open bay (e.g. Mamala Bay at Honolulu) shoots its ray to open
// ocean and stays EXPOSED. Sheltered stations inherit the surge of their
// nearest exposed station.
//
// On Oahu this couples Waiau (head of Pearl Harbor) to the open south
// shore — the mechanism behind the paper's observation that Waiau floods
// in every realization that floods Honolulu.
#pragma once

#include <vector>

#include "mesh/coastal_builder.h"
#include "terrain/terrain.h"

namespace ct::surge {

struct HarborConfig {
  /// How far the seaward normal ray is traced (m).
  double ray_length_m = 6000.0;
  /// Sampling step along the ray (m).
  double ray_step_m = 100.0;
  /// The ray must stay over water for this long before a land hit counts
  /// (skips the surf zone right at the station).
  double ray_clearance_m = 200.0;
  /// Funneling amplification applied to the inherited level.
  double amplification = 1.08;
  /// Master switch (ablation benches disable it).
  bool enabled = true;
};

/// Per-station shelter classification (true = sheltered).
std::vector<bool> sheltered_stations(const mesh::CoastalMesh& cm,
                                     const terrain::Terrain& terrain,
                                     const HarborConfig& config);

/// For each sheltered station, the index of the nearest exposed station
/// (by euclidean distance). Identity for exposed stations and when every
/// station is sheltered. Uses a grid index with an expanding-radius query;
/// guaranteed to return the same map as harbor_source_map_reference
/// (candidate radii are inflated past any floating-point rounding of the
/// distance, then ties resolve to the lowest station index, which is what
/// the reference scan's strict `<` picks).
std::vector<std::size_t> harbor_source_map(const mesh::CoastalMesh& cm,
                                           const std::vector<bool>& sheltered);

/// Reference O(stations^2) scan the indexed version is tested against.
std::vector<std::size_t> harbor_source_map_reference(
    const mesh::CoastalMesh& cm, const std::vector<bool>& sheltered);

/// Applies the transfer in place: sheltered stations get
/// `amplification * wse[source]`.
void apply_harbor_transfer(std::vector<double>& shore_wse,
                           const std::vector<bool>& sheltered,
                           const std::vector<std::size_t>& source_map,
                           double amplification);

/// Allocation-free variant: `snapshot` supplies the pre-transfer copy the
/// in-place rule reads from (reused across realizations by the engine
/// scratch). Bit-identical to the two-argument form.
void apply_harbor_transfer(std::vector<double>& shore_wse,
                           const std::vector<bool>& sheltered,
                           const std::vector<std::size_t>& source_map,
                           double amplification,
                           std::vector<double>& snapshot);

/// Along-shore moving average over EXPOSED stations (paper §V-A: "we
/// averaged the water surface elevations near the shoreline"). Each
/// exposed station is replaced by the mean of the exposed stations within
/// `window` index positions along the shoreline walk (the walk is
/// circular). Sheltered stations are left untouched — run this BEFORE
/// apply_harbor_transfer so harbors inherit the averaged open-coast level.
void alongshore_average(std::vector<double>& shore_wse,
                        const std::vector<bool>& sheltered, int window);

/// Allocation-free variant with a caller-provided snapshot buffer.
/// Bit-identical to the three-argument form.
void alongshore_average(std::vector<double>& shore_wse,
                        const std::vector<bool>& sheltered, int window,
                        std::vector<double>& snapshot);

}  // namespace ct::surge
