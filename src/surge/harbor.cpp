#include "surge/harbor.h"

#include <limits>
#include <stdexcept>

#include "geo/polygon.h"

namespace ct::surge {

std::vector<bool> sheltered_stations(const mesh::CoastalMesh& cm,
                                     const terrain::Terrain& terrain,
                                     const HarborConfig& config) {
  if (config.ray_step_m <= 0.0 || config.ray_length_m <= 0.0) {
    throw std::invalid_argument("sheltered_stations: bad ray parameters");
  }
  const geo::Polygon& coast = terrain.coastline();
  std::vector<bool> out(cm.stations.size(), false);
  for (std::size_t i = 0; i < cm.stations.size(); ++i) {
    const auto& station = cm.stations[i];
    for (double d = config.ray_clearance_m; d <= config.ray_length_m;
         d += config.ray_step_m) {
      const geo::Vec2 probe = station.position + station.outward_normal * d;
      if (coast.contains(probe)) {  // the "seaward" ray hit land: a channel
        out[i] = true;
        break;
      }
    }
  }
  return out;
}

std::vector<std::size_t> harbor_source_map(const mesh::CoastalMesh& cm,
                                           const std::vector<bool>& sheltered) {
  if (sheltered.size() != cm.stations.size()) {
    throw std::invalid_argument("harbor_source_map: mask size mismatch");
  }
  std::vector<std::size_t> map(cm.stations.size());
  for (std::size_t i = 0; i < cm.stations.size(); ++i) {
    map[i] = i;
    if (!sheltered[i]) continue;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < cm.stations.size(); ++j) {
      if (sheltered[j]) continue;
      const double d =
          geo::distance(cm.stations[i].position, cm.stations[j].position);
      if (d < best) {
        best = d;
        map[i] = j;
      }
    }
  }
  return map;
}

void alongshore_average(std::vector<double>& shore_wse,
                        const std::vector<bool>& sheltered, int window) {
  if (shore_wse.size() != sheltered.size()) {
    throw std::invalid_argument("alongshore_average: size mismatch");
  }
  if (window <= 0) return;
  const std::size_t n = shore_wse.size();
  if (n == 0) return;
  const std::vector<double> snapshot = shore_wse;
  for (std::size_t i = 0; i < n; ++i) {
    if (sheltered[i]) continue;
    double sum = 0.0;
    int count = 0;
    for (int d = -window; d <= window; ++d) {
      const std::size_t j =
          (i + n + static_cast<std::size_t>(d + static_cast<int>(n))) % n;
      if (sheltered[j]) continue;
      sum += snapshot[j];
      ++count;
    }
    if (count > 0) shore_wse[i] = sum / count;
  }
}

void apply_harbor_transfer(std::vector<double>& shore_wse,
                           const std::vector<bool>& sheltered,
                           const std::vector<std::size_t>& source_map,
                           double amplification) {
  if (shore_wse.size() != sheltered.size() ||
      shore_wse.size() != source_map.size()) {
    throw std::invalid_argument("apply_harbor_transfer: size mismatch");
  }
  // Read from a snapshot so chained sheltered stations do not compound.
  const std::vector<double> snapshot = shore_wse;
  for (std::size_t i = 0; i < shore_wse.size(); ++i) {
    if (sheltered[i]) {
      shore_wse[i] = amplification * snapshot[source_map[i]];
    }
  }
}

}  // namespace ct::surge
