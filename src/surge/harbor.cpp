#include "surge/harbor.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "geo/grid_index.h"
#include "geo/polygon.h"

namespace ct::surge {

std::vector<bool> sheltered_stations(const mesh::CoastalMesh& cm,
                                     const terrain::Terrain& terrain,
                                     const HarborConfig& config) {
  if (config.ray_step_m <= 0.0 || config.ray_length_m <= 0.0) {
    throw std::invalid_argument("sheltered_stations: bad ray parameters");
  }
  const geo::Polygon& coast = terrain.coastline();
  std::vector<bool> out(cm.stations.size(), false);
  for (std::size_t i = 0; i < cm.stations.size(); ++i) {
    const auto& station = cm.stations[i];
    for (double d = config.ray_clearance_m; d <= config.ray_length_m;
         d += config.ray_step_m) {
      const geo::Vec2 probe = station.position + station.outward_normal * d;
      if (coast.contains(probe)) {  // the "seaward" ray hit land: a channel
        out[i] = true;
        break;
      }
    }
  }
  return out;
}

std::vector<std::size_t> harbor_source_map_reference(
    const mesh::CoastalMesh& cm, const std::vector<bool>& sheltered) {
  if (sheltered.size() != cm.stations.size()) {
    throw std::invalid_argument("harbor_source_map: mask size mismatch");
  }
  std::vector<std::size_t> map(cm.stations.size());
  for (std::size_t i = 0; i < cm.stations.size(); ++i) {
    map[i] = i;
    if (!sheltered[i]) continue;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < cm.stations.size(); ++j) {
      if (sheltered[j]) continue;
      const double d =
          geo::distance(cm.stations[i].position, cm.stations[j].position);
      if (d < best) {
        best = d;
        map[i] = j;
      }
    }
  }
  return map;
}

std::vector<std::size_t> harbor_source_map(const mesh::CoastalMesh& cm,
                                           const std::vector<bool>& sheltered) {
  if (sheltered.size() != cm.stations.size()) {
    throw std::invalid_argument("harbor_source_map: mask size mismatch");
  }
  const std::size_t n = cm.stations.size();
  std::vector<std::size_t> map(n);

  // Exposed stations, ascending: the candidate set for every sheltered
  // station. Ascending order means "lowest station index" is the tie-break,
  // exactly what the reference scan's strict `<` yields.
  std::vector<std::size_t> exposed;
  std::vector<geo::Vec2> exposed_pos;
  geo::BBox box;
  for (std::size_t i = 0; i < n; ++i) {
    map[i] = i;
    box.expand(cm.stations[i].position);
    if (!sheltered[i]) {
      exposed.push_back(i);
      exposed_pos.push_back(cm.stations[i].position);
    }
  }
  if (exposed.empty() || exposed.size() == n) return map;

  // No pair of stations is farther apart than the bounding-box diagonal.
  const double max_radius =
      std::sqrt(box.width() * box.width() + box.height() * box.height()) + 1.0;
  const geo::GridIndex index(exposed_pos, 4000.0);

  std::vector<std::size_t> found;
  for (std::size_t i = 0; i < n; ++i) {
    if (!sheltered[i]) continue;
    const geo::Vec2 pos = cm.stations[i].position;

    // Expand until any exposed station falls inside the query radius.
    double radius = 8000.0;
    while (true) {
      index.within(pos, radius, found);
      if (!found.empty() || radius >= max_radius) break;
      radius *= 2.0;
    }
    if (found.empty()) continue;  // unreachable: max_radius covers all pairs

    // The found set bounds the answer from above. Rescan with that bound
    // inflated far past any rounding of geo::distance (relative error
    // ~1e-16 vs a 1e-7 margin) so every station whose ROUNDED distance
    // ties the minimum is guaranteed to be a candidate.
    double bound = std::numeric_limits<double>::infinity();
    for (const std::size_t e : found) {
      bound = std::min(bound, geo::distance(pos, exposed_pos[e]));
    }
    const double rescan = bound * 1.0000001 + 1e-6;
    if (rescan > radius) index.within(pos, rescan, found);

    double best_d = std::numeric_limits<double>::infinity();
    std::size_t best_station = i;
    for (const std::size_t e : found) {
      const double d = geo::distance(pos, exposed_pos[e]);
      const std::size_t station = exposed[e];
      if (d < best_d || (d == best_d && station < best_station)) {
        best_d = d;
        best_station = station;
      }
    }
    map[i] = best_station;
  }
  return map;
}

void alongshore_average(std::vector<double>& shore_wse,
                        const std::vector<bool>& sheltered, int window) {
  std::vector<double> snapshot;
  alongshore_average(shore_wse, sheltered, window, snapshot);
}

void alongshore_average(std::vector<double>& shore_wse,
                        const std::vector<bool>& sheltered, int window,
                        std::vector<double>& snapshot) {
  if (shore_wse.size() != sheltered.size()) {
    throw std::invalid_argument("alongshore_average: size mismatch");
  }
  if (window <= 0) return;
  const std::size_t n = shore_wse.size();
  if (n == 0) return;
  snapshot.assign(shore_wse.begin(), shore_wse.end());
  for (std::size_t i = 0; i < n; ++i) {
    if (sheltered[i]) continue;
    double sum = 0.0;
    int count = 0;
    for (int d = -window; d <= window; ++d) {
      const std::size_t j =
          (i + n + static_cast<std::size_t>(d + static_cast<int>(n))) % n;
      if (sheltered[j]) continue;
      sum += snapshot[j];
      ++count;
    }
    if (count > 0) shore_wse[i] = sum / count;
  }
}

void apply_harbor_transfer(std::vector<double>& shore_wse,
                           const std::vector<bool>& sheltered,
                           const std::vector<std::size_t>& source_map,
                           double amplification) {
  std::vector<double> snapshot;
  apply_harbor_transfer(shore_wse, sheltered, source_map, amplification,
                        snapshot);
}

void apply_harbor_transfer(std::vector<double>& shore_wse,
                           const std::vector<bool>& sheltered,
                           const std::vector<std::size_t>& source_map,
                           double amplification,
                           std::vector<double>& snapshot) {
  if (shore_wse.size() != sheltered.size() ||
      shore_wse.size() != source_map.size()) {
    throw std::invalid_argument("apply_harbor_transfer: size mismatch");
  }
  // Read from a snapshot so chained sheltered stations do not compound.
  snapshot.assign(shore_wse.begin(), shore_wse.end());
  for (std::size_t i = 0; i < shore_wse.size(); ++i) {
    if (sheltered[i]) {
      shore_wse[i] = amplification * snapshot[source_map[i]];
    }
  }
}

}  // namespace ct::surge
