// Inundation mapping: converts the smoothed shoreline water-surface
// elevation into per-asset inundation depths. This is the paper's final
// hurricane-modeling step: "the relevant power assets ... were tracked to
// determine the inundation levels at those sites in each hurricane
// realization", with an asset failing when peak inundation exceeds 0.5 m
// (typical switch height in plants and substations).
#pragma once

#include <string>
#include <vector>

#include "geo/geopoint.h"
#include "geo/grid_index.h"
#include "mesh/coastal_builder.h"

namespace ct::surge {

/// Exposure class for the (optional) wind-fragility stage: buildings
/// (control/data centers) are wind-hardened; outdoor switchyards are not.
enum class ExposureClass {
  kFacility,    ///< Hardened building: flooding only.
  kPowerPlant,  ///< Generation: flooding + robust wind fragility.
  kSubstation,  ///< Outdoor switchyard: flooding + standard wind fragility.
};

/// A physical asset whose flooding matters to the analysis.
struct ExposedAsset {
  std::string id;
  geo::GeoPoint location;
  /// Surveyed ground (pad) elevation of the asset (m above MSL).
  double ground_elevation_m = 2.0;
  ExposureClass exposure_class = ExposureClass::kFacility;
};

/// Inundation-model parameters.
struct InundationConfig {
  /// E-folding length of the water level as it extends inland from the
  /// shoreline (m). The paper extends WSE "onto the shoreline"; the decay
  /// keeps far-inland assets dry.
  double decay_length_m = 3000.0;
  /// Asset fails when inundation depth exceeds this (m). Paper: 0.5 m.
  double failure_threshold_m = 0.5;
};

/// Computed impact on one asset for one realization.
struct AssetImpact {
  std::string asset_id;
  std::size_t shoreline_station = 0;   ///< Station the water came from.
  double shoreline_wse_m = 0.0;        ///< Smoothed WSE at that station.
  double water_level_m = 0.0;          ///< WSE extended to the asset.
  double inundation_depth_m = 0.0;     ///< max(0, water level - ground).
  bool failed = false;                 ///< depth > failure threshold.
  /// Wind-fragility extension (zero/false unless enabled, see fragility.h).
  double peak_wind_ms = 0.0;           ///< Peak sustained wind at the asset.
  bool wind_failed = false;            ///< Sampled wind damage.
};

/// Maps shoreline water levels onto assets. Construct once per mesh; the
/// per-realization call takes only the shoreline WSE vector.
class InundationMapper {
 public:
  InundationMapper(const mesh::CoastalMesh& cm, const geo::EnuProjection& proj,
                   InundationConfig config = {});

  /// `shoreline_wse` must have one value per shoreline station (the output
  /// of mesh::shoreline_values on the smoothed envelope).
  AssetImpact impact(const ExposedAsset& asset,
                     const std::vector<double>& shoreline_wse) const;

  std::vector<AssetImpact> impacts(const std::vector<ExposedAsset>& assets,
                                   const std::vector<double>& shoreline_wse) const;

  /// Station a point binds to — the exact index `impact` would use.
  /// Exposed so the precomputed asset stencils (surge/mesh_bindings.h)
  /// freeze the same station the per-realization path picks.
  std::size_t nearest_station(geo::Vec2 enu) const noexcept {
    return station_index_.nearest(enu);
  }

  const InundationConfig& config() const noexcept { return config_; }

 private:
  const mesh::CoastalMesh& cm_;
  geo::EnuProjection proj_;
  InundationConfig config_;
  geo::GridIndex station_index_;
};

}  // namespace ct::surge
