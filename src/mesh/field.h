// Operations on node fields: the shoreline smoothing the paper applied to
// the coarse ADCIRC output ("we averaged the water surface elevations near
// the shoreline, and then extended the water surface elevation onto the
// shoreline"), plus general helpers.
//
// Two forms exist: the original allocating, predicate-driven functions
// (kept as the reference path and for one-off callers), and in-place
// double-buffered kernels over precomputed node lists (ShorelinePlan) that
// the realization hot path runs — no per-pass allocation, no std::function
// in the inner loop, bit-identical results.
#pragma once

#include <functional>

#include "mesh/coastal_builder.h"
#include "mesh/trimesh.h"

namespace ct::mesh {

/// One pass of neighbor averaging applied to nodes where `affected` is true.
/// Each affected node is replaced by the mean of itself and its mesh
/// neighbors. Conservative: output values are bounded by input min/max.
NodeField smooth_pass(const TriMesh& mesh, const NodeField& field,
                      const std::function<bool(NodeId)>& affected);

/// In-place kernel form: writes the smoothed values of the nodes in
/// `affected` into `out` (first assigned from `in`, reusing its capacity).
/// Averages read `in`, so `out` must be a distinct buffer. Bit-identical to
/// the predicate form with an equivalent affected set.
void smooth_pass(const TriMesh& mesh, const NodeField& in, NodeField& out,
                 const std::vector<NodeId>& affected);

/// Precomputed shoreline fix-up: the node sets the paper's averaging and
/// extension steps touch, resolved once per mesh instead of per realization.
struct ShorelinePlan {
  /// Nodes inside the smoothing band (|cross-shore offset| <= band).
  std::vector<NodeId> band_nodes;
  /// Onshore nodes (offset > 0) that receive their station's shore value.
  std::vector<NodeId> extend_targets;
  /// The shoreline node whose value each extend target copies.
  std::vector<NodeId> extend_sources;
  int passes = 0;
};

/// Resolves the plan for `band_m` / `passes` (throws when passes < 0).
ShorelinePlan make_shoreline_plan(const CoastalMesh& cm, double band_m,
                                  int passes);

/// The paper's shoreline fix-up on a coarse mesh, two steps:
///  1. AVERAGE: `passes` neighbor-averaging passes over nodes within
///     `band_m` of the shoreline (|cross-shore offset| <= band_m), removing
///     the 1.5m-next-to-0m artifacts coarse meshes produce.
///  2. EXTEND: copy each station's shoreline water level onto that
///     station's onshore nodes (offset > 0), i.e. extend the water surface
///     elevation onto the shoreline.
/// Returns the corrected field; `wse` has one value per mesh node.
NodeField shoreline_average_and_extend(const CoastalMesh& cm,
                                       const NodeField& wse, double band_m,
                                       int passes);

/// In-place plan form: applies the fix-up to `field` using `scratch` as the
/// double buffer. Allocation-free once both buffers have mesh capacity;
/// bit-identical to the allocating form with the same band/passes.
void shoreline_average_and_extend(const CoastalMesh& cm,
                                  const ShorelinePlan& plan, NodeField& field,
                                  NodeField& scratch);

/// Min/max over a field (field must be non-empty).
double field_min(const NodeField& field);
double field_max(const NodeField& field);

/// Per-station shoreline value: field sampled at each station's shore node.
std::vector<double> shoreline_values(const CoastalMesh& cm,
                                     const NodeField& field);

/// Allocation-free variant writing into `out` (resized to station count).
void shoreline_values(const CoastalMesh& cm, const NodeField& field,
                      std::vector<double>& out);

}  // namespace ct::mesh
