// Operations on node fields: the shoreline smoothing the paper applied to
// the coarse ADCIRC output ("we averaged the water surface elevations near
// the shoreline, and then extended the water surface elevation onto the
// shoreline"), plus general helpers.
#pragma once

#include <functional>

#include "mesh/coastal_builder.h"
#include "mesh/trimesh.h"

namespace ct::mesh {

/// One pass of neighbor averaging applied to nodes where `affected` is true.
/// Each affected node is replaced by the mean of itself and its mesh
/// neighbors. Conservative: output values are bounded by input min/max.
NodeField smooth_pass(const TriMesh& mesh, const NodeField& field,
                      const std::function<bool(NodeId)>& affected);

/// The paper's shoreline fix-up on a coarse mesh, two steps:
///  1. AVERAGE: `passes` neighbor-averaging passes over nodes within
///     `band_m` of the shoreline (|cross-shore offset| <= band_m), removing
///     the 1.5m-next-to-0m artifacts coarse meshes produce.
///  2. EXTEND: copy each station's shoreline water level onto that
///     station's onshore nodes (offset > 0), i.e. extend the water surface
///     elevation onto the shoreline.
/// Returns the corrected field; `wse` has one value per mesh node.
NodeField shoreline_average_and_extend(const CoastalMesh& cm,
                                       const NodeField& wse, double band_m,
                                       int passes);

/// Min/max over a field (field must be non-empty).
double field_min(const NodeField& field);
double field_max(const NodeField& field);

/// Per-station shoreline value: field sampled at each station's shore node.
std::vector<double> shoreline_values(const CoastalMesh& cm,
                                     const NodeField& field);

}  // namespace ct::mesh
