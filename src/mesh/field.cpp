#include "mesh/field.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ct::mesh {

NodeField smooth_pass(const TriMesh& mesh, const NodeField& field,
                      const std::function<bool(NodeId)>& affected) {
  if (field.size() != mesh.node_count()) {
    throw std::invalid_argument("smooth_pass: field size mismatch");
  }
  NodeField out = field;
  for (NodeId n = 0; n < mesh.node_count(); ++n) {
    if (!affected(n)) continue;
    double sum = field[n];
    std::size_t count = 1;
    for (const NodeId m : mesh.neighbors(n)) {
      sum += field[m];
      ++count;
    }
    out[n] = sum / static_cast<double>(count);
  }
  return out;
}

void smooth_pass(const TriMesh& mesh, const NodeField& in, NodeField& out,
                 const std::vector<NodeId>& affected) {
  if (in.size() != mesh.node_count()) {
    throw std::invalid_argument("smooth_pass: field size mismatch");
  }
  if (&in == &out) {
    throw std::invalid_argument("smooth_pass: in and out must be distinct");
  }
  out.assign(in.begin(), in.end());
  for (const NodeId n : affected) {
    double sum = in[n];
    std::size_t count = 1;
    for (const NodeId m : mesh.neighbors(n)) {
      sum += in[m];
      ++count;
    }
    out[n] = sum / static_cast<double>(count);
  }
}

ShorelinePlan make_shoreline_plan(const CoastalMesh& cm, double band_m,
                                  int passes) {
  if (passes < 0) {
    throw std::invalid_argument("make_shoreline_plan: passes < 0");
  }
  ShorelinePlan plan;
  plan.passes = passes;
  for (NodeId n = 0; n < cm.mesh.node_count(); ++n) {
    if (std::abs(cm.offset_of_node[n]) <= band_m) plan.band_nodes.push_back(n);
    if (cm.offset_of_node[n] > 0.0) {
      plan.extend_targets.push_back(n);
      plan.extend_sources.push_back(cm.shore_nodes[cm.station_of_node[n]]);
    }
  }
  return plan;
}

void shoreline_average_and_extend(const CoastalMesh& cm,
                                  const ShorelinePlan& plan, NodeField& field,
                                  NodeField& scratch) {
  if (field.size() != cm.mesh.node_count()) {
    throw std::invalid_argument(
        "shoreline_average_and_extend: field size mismatch");
  }
  for (int p = 0; p < plan.passes; ++p) {
    smooth_pass(cm.mesh, field, scratch, plan.band_nodes);
    field.swap(scratch);
  }
  // Extension: targets have offset > 0 and sources are offset-0 shore
  // nodes, so sources are never overwritten mid-loop and reading `field`
  // matches the legacy snapshot semantics.
  for (std::size_t i = 0; i < plan.extend_targets.size(); ++i) {
    field[plan.extend_targets[i]] = field[plan.extend_sources[i]];
  }
}

NodeField shoreline_average_and_extend(const CoastalMesh& cm,
                                       const NodeField& wse, double band_m,
                                       int passes) {
  if (wse.size() != cm.mesh.node_count()) {
    throw std::invalid_argument(
        "shoreline_average_and_extend: field size mismatch");
  }
  if (passes < 0) {
    throw std::invalid_argument("shoreline_average_and_extend: passes < 0");
  }

  // Step 1: average near the shoreline.
  NodeField field = wse;
  const auto near_shore = [&](NodeId n) {
    return std::abs(cm.offset_of_node[n]) <= band_m;
  };
  for (int p = 0; p < passes; ++p) {
    field = smooth_pass(cm.mesh, field, near_shore);
  }

  // Step 2: extend each station's shoreline value onto its onshore nodes.
  for (NodeId n = 0; n < cm.mesh.node_count(); ++n) {
    if (cm.offset_of_node[n] > 0.0) {
      const std::uint32_t station = cm.station_of_node[n];
      field[n] = field[cm.shore_nodes[station]];
    }
  }
  return field;
}

double field_min(const NodeField& field) {
  if (field.empty()) throw std::invalid_argument("field_min: empty field");
  return *std::min_element(field.begin(), field.end());
}

double field_max(const NodeField& field) {
  if (field.empty()) throw std::invalid_argument("field_max: empty field");
  return *std::max_element(field.begin(), field.end());
}

std::vector<double> shoreline_values(const CoastalMesh& cm,
                                     const NodeField& field) {
  if (field.size() != cm.mesh.node_count()) {
    throw std::invalid_argument("shoreline_values: field size mismatch");
  }
  std::vector<double> out;
  out.reserve(cm.shore_nodes.size());
  for (const NodeId n : cm.shore_nodes) out.push_back(field[n]);
  return out;
}

void shoreline_values(const CoastalMesh& cm, const NodeField& field,
                      std::vector<double>& out) {
  if (field.size() != cm.mesh.node_count()) {
    throw std::invalid_argument("shoreline_values: field size mismatch");
  }
  out.resize(cm.shore_nodes.size());
  for (std::size_t s = 0; s < cm.shore_nodes.size(); ++s) {
    out[s] = field[cm.shore_nodes[s]];
  }
}

}  // namespace ct::mesh
