// Builds the coastal band mesh around an island: a structured lattice in
// (shoreline arclength, cross-shore offset) space triangulated into a
// TriMesh. Mirrors how ADCIRC meshes concentrate resolution near the coast;
// per the paper, the mesh is intentionally COARSE near the shoreline (the
// smoothing pass in field.h compensates, as the authors did).
#pragma once

#include <vector>

#include "mesh/trimesh.h"
#include "terrain/shoreline.h"
#include "terrain/terrain.h"

namespace ct::mesh {

/// Resolution/extent parameters of the coastal band mesh.
struct CoastalMeshConfig {
  /// Spacing between shoreline stations (m). The paper notes the mesh is
  /// coarse near the shoreline; 2 km reproduces that coarseness.
  double shore_spacing_m = 2000.0;
  /// Cross-shore node spacing near the shoreline (m).
  double cross_shore_spacing_m = 800.0;
  /// How far offshore the band extends (m).
  double offshore_extent_m = 8000.0;
  /// How far inland the band extends (m).
  double inland_extent_m = 3000.0;
};

/// The built mesh plus the shoreline bookkeeping the surge pipeline needs.
struct CoastalMesh {
  TriMesh mesh;
  /// Shoreline stations (one column of nodes per station).
  std::vector<terrain::ShorePoint> stations;
  /// Node id of the offset-0 (shoreline) node for each station.
  std::vector<NodeId> shore_nodes;
  /// For each node: which station column it belongs to.
  std::vector<std::uint32_t> station_of_node;
  /// For each node: signed cross-shore offset (negative = offshore).
  std::vector<double> offset_of_node;
};

/// Builds the band mesh around `terrain`'s coastline. Elevation at each node
/// is sampled from the terrain. The lattice wraps around the island (the
/// last station column connects back to the first).
CoastalMesh build_coastal_mesh(const terrain::Terrain& terrain,
                               const CoastalMeshConfig& config);

}  // namespace ct::mesh
