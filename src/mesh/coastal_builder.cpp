#include "mesh/coastal_builder.h"

#include <cmath>
#include <stdexcept>

namespace ct::mesh {

CoastalMesh build_coastal_mesh(const terrain::Terrain& terrain,
                               const CoastalMeshConfig& config) {
  if (config.shore_spacing_m <= 0.0 || config.cross_shore_spacing_m <= 0.0) {
    throw std::invalid_argument("build_coastal_mesh: spacing must be positive");
  }
  if (config.offshore_extent_m <= 0.0 || config.inland_extent_m < 0.0) {
    throw std::invalid_argument("build_coastal_mesh: bad extents");
  }

  std::vector<terrain::ShorePoint> stations =
      terrain::sample_shoreline(terrain.coastline(), config.shore_spacing_m);
  const std::size_t n_stations = stations.size();
  if (n_stations < 3) {
    throw std::runtime_error("build_coastal_mesh: too few shoreline stations");
  }

  // Cross-shore offsets from offshore (negative) to inland (positive),
  // always including 0 (the shoreline row).
  std::vector<double> offsets;
  for (double t = -config.offshore_extent_m; t < -1e-9;
       t += config.cross_shore_spacing_m) {
    offsets.push_back(t);
  }
  offsets.push_back(0.0);
  for (double t = config.cross_shore_spacing_m;
       t <= config.inland_extent_m + 1e-9; t += config.cross_shore_spacing_m) {
    offsets.push_back(t);
  }
  const std::size_t n_offsets = offsets.size();

  std::vector<Node> nodes;
  std::vector<std::uint32_t> station_of_node;
  std::vector<double> offset_of_node;
  std::vector<NodeId> shore_nodes(n_stations);
  nodes.reserve(n_stations * n_offsets);
  station_of_node.reserve(n_stations * n_offsets);
  offset_of_node.reserve(n_stations * n_offsets);

  for (std::size_t i = 0; i < n_stations; ++i) {
    const terrain::ShorePoint& sp = stations[i];
    for (std::size_t j = 0; j < n_offsets; ++j) {
      // Negative offset = offshore = along the outward normal.
      const geo::Vec2 pos = sp.position + sp.outward_normal * (-offsets[j]);
      Node node;
      node.position = pos;
      node.elevation_m = terrain.elevation(pos);
      if (offsets[j] == 0.0) {
        node.kind = NodeKind::kShore;
        shore_nodes[i] = static_cast<NodeId>(nodes.size());
      } else if (offsets[j] < 0.0) {
        node.kind = NodeKind::kOcean;
      } else {
        node.kind = NodeKind::kLand;
      }
      station_of_node.push_back(static_cast<std::uint32_t>(i));
      offset_of_node.push_back(offsets[j]);
      nodes.push_back(node);
    }
  }

  // Triangulate the wrapped lattice: quad (i,j)-(i+1,j)-(i+1,j+1)-(i,j+1)
  // splits into two triangles. The column index wraps modulo n_stations so
  // the band closes around the island.
  std::vector<Element> elements;
  elements.reserve(2 * n_stations * (n_offsets - 1));
  const auto node_at = [&](std::size_t i, std::size_t j) {
    return static_cast<NodeId>((i % n_stations) * n_offsets + j);
  };
  for (std::size_t i = 0; i < n_stations; ++i) {
    for (std::size_t j = 0; j + 1 < n_offsets; ++j) {
      const NodeId a = node_at(i, j);
      const NodeId b = node_at(i + 1, j);
      const NodeId c = node_at(i + 1, j + 1);
      const NodeId d = node_at(i, j + 1);
      elements.push_back({{a, b, c}});
      elements.push_back({{a, c, d}});
    }
  }

  return CoastalMesh{TriMesh(std::move(nodes), std::move(elements)),
                     std::move(stations), std::move(shore_nodes),
                     std::move(station_of_node), std::move(offset_of_node)};
}

}  // namespace ct::mesh
