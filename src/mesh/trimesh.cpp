#include "mesh/trimesh.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ct::mesh {

TriMesh::TriMesh(std::vector<Node> nodes, std::vector<Element> elements)
    : nodes_(std::move(nodes)), elements_(std::move(elements)) {
  if (nodes_.empty()) throw std::invalid_argument("TriMesh: no nodes");

  // Gather per-node lists first (preserving first-seen order), then flatten
  // into CSR so the hot kernels iterate flat contiguous arrays.
  std::vector<std::vector<NodeId>> adjacency(nodes_.size());
  std::vector<std::vector<ElementId>> node_elements(nodes_.size());

  const auto add_edge = [&](NodeId a, NodeId b) {
    auto& adj = adjacency[a];
    if (std::find(adj.begin(), adj.end(), b) == adj.end()) adj.push_back(b);
  };

  for (ElementId e = 0; e < elements_.size(); ++e) {
    const auto& el = elements_[e];
    for (const NodeId n : el.nodes) {
      if (n >= nodes_.size()) {
        throw std::out_of_range("TriMesh: element references missing node");
      }
      node_elements[n].push_back(e);
    }
    add_edge(el.nodes[0], el.nodes[1]);
    add_edge(el.nodes[1], el.nodes[0]);
    add_edge(el.nodes[1], el.nodes[2]);
    add_edge(el.nodes[2], el.nodes[1]);
    add_edge(el.nodes[2], el.nodes[0]);
    add_edge(el.nodes[0], el.nodes[2]);
  }

  const auto flatten = [&](const auto& lists, auto& offsets, auto& flat) {
    offsets.assign(nodes_.size() + 1, 0);
    std::size_t total = 0;
    for (std::size_t n = 0; n < lists.size(); ++n) {
      offsets[n] = static_cast<std::uint32_t>(total);
      total += lists[n].size();
    }
    offsets[nodes_.size()] = static_cast<std::uint32_t>(total);
    flat.reserve(total);
    for (const auto& list : lists) {
      flat.insert(flat.end(), list.begin(), list.end());
    }
  };
  flatten(adjacency, adj_offsets_, adjacency_);
  flatten(node_elements, elem_offsets_, node_elements_);

  std::vector<geo::Vec2> positions;
  positions.reserve(nodes_.size());
  for (const Node& n : nodes_) positions.push_back(n.position);

  // Cell size ~ typical node spacing: sqrt(bounding area / node count).
  geo::BBox box;
  for (const geo::Vec2 p : positions) box.expand(p);
  const double area = std::max(1.0, box.width() * box.height());
  const double cell =
      std::max(1.0, std::sqrt(area / static_cast<double>(nodes_.size())));
  index_ = std::make_unique<geo::GridIndex>(positions, cell);
}

void TriMesh::check_node(NodeId id) const {
  if (id >= nodes_.size()) {
    throw std::out_of_range("TriMesh: node id out of range");
  }
}

NodeId TriMesh::nearest_node(geo::Vec2 p) const noexcept {
  return static_cast<NodeId>(index_->nearest(p));
}

double TriMesh::element_signed_area2(ElementId id) const {
  const auto& el = elements_.at(id);
  const geo::Vec2 a = nodes_[el.nodes[0]].position;
  const geo::Vec2 b = nodes_[el.nodes[1]].position;
  const geo::Vec2 c = nodes_[el.nodes[2]].position;
  return (b - a).cross(c - a);
}

std::optional<Barycentric> TriMesh::locate(geo::Vec2 p) const noexcept {
  // Candidate elements: those incident to the few nodes nearest p. For a
  // band mesh with bounded aspect ratio this covers the containing element
  // whenever p lies inside the mesh.
  const NodeId seed = nearest_node(p);
  // Breadth: seed's elements plus elements of its neighbors.
  const auto try_element = [&](ElementId e) -> std::optional<Barycentric> {
    const auto& el = elements_[e];
    const geo::Vec2 a = nodes_[el.nodes[0]].position;
    const geo::Vec2 b = nodes_[el.nodes[1]].position;
    const geo::Vec2 c = nodes_[el.nodes[2]].position;
    const double denom = (b - a).cross(c - a);
    if (std::abs(denom) < 1e-12) return std::nullopt;
    const double w0 = (b - p).cross(c - p) / denom;
    const double w1 = (c - p).cross(a - p) / denom;
    const double w2 = 1.0 - w0 - w1;
    constexpr double kTol = -1e-9;
    if (w0 >= kTol && w1 >= kTol && w2 >= kTol) {
      return Barycentric{e, {std::max(0.0, w0), std::max(0.0, w1),
                             std::max(0.0, w2)}};
    }
    return std::nullopt;
  };

  for (const ElementId e : node_elements(seed)) {
    if (auto hit = try_element(e)) return hit;
  }
  for (const NodeId n : neighbors(seed)) {
    for (const ElementId e : node_elements(n)) {
      if (auto hit = try_element(e)) return hit;
    }
  }
  return std::nullopt;
}

double TriMesh::interpolate(const NodeField& field, geo::Vec2 p) const {
  if (field.size() != nodes_.size()) {
    throw std::invalid_argument("TriMesh::interpolate: field size mismatch");
  }
  if (const auto bary = locate(p)) {
    const auto& el = elements_[bary->element];
    double v = 0.0;
    for (int i = 0; i < 3; ++i) v += bary->weights[i] * field[el.nodes[i]];
    return v;
  }
  return field[nearest_node(p)];
}

double TriMesh::total_area() const noexcept {
  double total = 0.0;
  for (ElementId e = 0; e < elements_.size(); ++e) {
    total += std::abs(element_signed_area2(e)) / 2.0;
  }
  return total;
}

}  // namespace ct::mesh
