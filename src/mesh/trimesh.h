// Unstructured triangular mesh, the discretization the surge solver runs
// on (the stand-in for the paper's ADCIRC mesh). Stores nodes with
// elevation, triangle elements, node adjacency, and supports point
// location + barycentric interpolation of node fields.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "geo/grid_index.h"
#include "geo/vec2.h"

namespace ct::mesh {

using NodeId = std::uint32_t;
using ElementId = std::uint32_t;

/// Classification of a node relative to the coastline.
enum class NodeKind : std::uint8_t {
  kOcean,  ///< below mean sea level, offshore
  kShore,  ///< on the shoreline (offset 0 in the coastal band)
  kLand,   ///< onshore
};

/// Mesh node: planar position plus ground/seafloor elevation.
struct Node {
  geo::Vec2 position;
  double elevation_m = 0.0;
  NodeKind kind = NodeKind::kOcean;
};

/// Triangle element (indices into the node array, counter-clockwise).
struct Element {
  std::array<NodeId, 3> nodes{};
};

/// A scalar field sampled at mesh nodes (e.g. water surface elevation).
using NodeField = std::vector<double>;

/// Barycentric coordinates of a point within an element.
struct Barycentric {
  ElementId element = 0;
  std::array<double, 3> weights{};
};

class TriMesh {
 public:
  TriMesh(std::vector<Node> nodes, std::vector<Element> elements);

  const std::vector<Node>& nodes() const noexcept { return nodes_; }
  const std::vector<Element>& elements() const noexcept { return elements_; }
  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t element_count() const noexcept { return elements_.size(); }

  const Node& node(NodeId id) const { return nodes_.at(id); }
  const Element& element(ElementId id) const { return elements_.at(id); }

  /// Node ids adjacent to `id` (sharing an element edge).
  const std::vector<NodeId>& neighbors(NodeId id) const {
    return adjacency_.at(id);
  }

  /// Nearest mesh node to a planar point.
  NodeId nearest_node(geo::Vec2 p) const noexcept;

  /// Locates the element containing `p`, if any; checks elements incident
  /// to nodes near `p` (sufficient for points inside the meshed band).
  std::optional<Barycentric> locate(geo::Vec2 p) const noexcept;

  /// Interpolates a node field at `p`: barycentric inside the mesh, nearest
  /// node value when `p` falls outside all elements. `field` must have one
  /// value per node.
  double interpolate(const NodeField& field, geo::Vec2 p) const;

  /// Signed double-area of an element (positive when counter-clockwise).
  double element_signed_area2(ElementId id) const;

  /// Total meshed area (sum of |element areas|).
  double total_area() const noexcept;

 private:
  std::vector<Node> nodes_;
  std::vector<Element> elements_;
  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<std::vector<ElementId>> node_elements_;
  std::unique_ptr<geo::GridIndex> index_;
};

}  // namespace ct::mesh
