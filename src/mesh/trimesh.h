// Unstructured triangular mesh, the discretization the surge solver runs
// on (the stand-in for the paper's ADCIRC mesh). Stores nodes with
// elevation, triangle elements, node adjacency, and supports point
// location + barycentric interpolation of node fields.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "geo/grid_index.h"
#include "geo/vec2.h"

namespace ct::mesh {

using NodeId = std::uint32_t;
using ElementId = std::uint32_t;

/// Classification of a node relative to the coastline.
enum class NodeKind : std::uint8_t {
  kOcean,  ///< below mean sea level, offshore
  kShore,  ///< on the shoreline (offset 0 in the coastal band)
  kLand,   ///< onshore
};

/// Mesh node: planar position plus ground/seafloor elevation.
struct Node {
  geo::Vec2 position;
  double elevation_m = 0.0;
  NodeKind kind = NodeKind::kOcean;
};

/// Triangle element (indices into the node array, counter-clockwise).
struct Element {
  std::array<NodeId, 3> nodes{};
};

/// A scalar field sampled at mesh nodes (e.g. water surface elevation).
using NodeField = std::vector<double>;

/// Barycentric coordinates of a point within an element.
struct Barycentric {
  ElementId element = 0;
  std::array<double, 3> weights{};
};

/// Contiguous read-only view over one CSR row (a node's neighbor or
/// incident-element list). Cheap to copy; valid while the mesh lives.
template <typename T>
class CsrRow {
 public:
  constexpr CsrRow(const T* begin, const T* end) noexcept
      : begin_(begin), end_(end) {}
  const T* begin() const noexcept { return begin_; }
  const T* end() const noexcept { return end_; }
  std::size_t size() const noexcept {
    return static_cast<std::size_t>(end_ - begin_);
  }
  bool empty() const noexcept { return begin_ == end_; }
  T operator[](std::size_t i) const noexcept { return begin_[i]; }

 private:
  const T* begin_;
  const T* end_;
};

class TriMesh {
 public:
  TriMesh(std::vector<Node> nodes, std::vector<Element> elements);

  const std::vector<Node>& nodes() const noexcept { return nodes_; }
  const std::vector<Element>& elements() const noexcept { return elements_; }
  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t element_count() const noexcept { return elements_.size(); }

  const Node& node(NodeId id) const { return nodes_.at(id); }
  const Element& element(ElementId id) const { return elements_.at(id); }

  /// Node ids adjacent to `id` (sharing an element edge). CSR row over a
  /// flat array: iterating neighbors in the smoothing kernels touches
  /// contiguous memory instead of chasing per-node heap vectors.
  CsrRow<NodeId> neighbors(NodeId id) const {
    check_node(id);
    return {adjacency_.data() + adj_offsets_[id],
            adjacency_.data() + adj_offsets_[id + 1]};
  }

  /// Element ids incident to node `id` (CSR row).
  CsrRow<ElementId> node_elements(NodeId id) const {
    check_node(id);
    return {node_elements_.data() + elem_offsets_[id],
            node_elements_.data() + elem_offsets_[id + 1]};
  }

  /// Nearest mesh node to a planar point.
  NodeId nearest_node(geo::Vec2 p) const noexcept;

  /// Locates the element containing `p`, if any; checks elements incident
  /// to nodes near `p` (sufficient for points inside the meshed band).
  std::optional<Barycentric> locate(geo::Vec2 p) const noexcept;

  /// Interpolates a node field at `p`: barycentric inside the mesh, nearest
  /// node value when `p` falls outside all elements. `field` must have one
  /// value per node.
  double interpolate(const NodeField& field, geo::Vec2 p) const;

  /// Signed double-area of an element (positive when counter-clockwise).
  double element_signed_area2(ElementId id) const;

  /// Total meshed area (sum of |element areas|).
  double total_area() const noexcept;

 private:
  void check_node(NodeId id) const;

  std::vector<Node> nodes_;
  std::vector<Element> elements_;
  // CSR adjacency: neighbors of node n live in
  // adjacency_[adj_offsets_[n] .. adj_offsets_[n+1]), insertion-ordered
  // (first-seen element order, matching the historical per-node vectors).
  std::vector<std::uint32_t> adj_offsets_;
  std::vector<NodeId> adjacency_;
  std::vector<std::uint32_t> elem_offsets_;
  std::vector<ElementId> node_elements_;
  std::unique_ptr<geo::GridIndex> index_;
};

}  // namespace ct::mesh
