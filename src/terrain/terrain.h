// Terrain model: land/sea mask, elevation, and bathymetry for the study
// region. The paper's analysis consumed an ADCIRC run on real Oahu
// terrain; we substitute a procedural island terrain (analytic, smooth,
// deterministic) that reproduces the geographic structure the analysis
// depends on: a low south-shore coastal plain (Honolulu, Waiau), a high
// leeward west coast (Kahe), and offshore bathymetry for the surge model.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "geo/geopoint.h"
#include "geo/polygon.h"
#include "geo/vec2.h"
#include "util/digest.h"

namespace ct::terrain {

/// Abstract terrain: everything downstream (mesh, surge, inundation) is
/// written against this interface, so a real DEM could be dropped in.
class Terrain {
 public:
  virtual ~Terrain() = default;

  /// Ground / seafloor elevation in meters above mean sea level at a point
  /// in the local ENU frame. Negative values are sea floor (depth).
  virtual double elevation(geo::Vec2 enu) const = 0;

  /// True when the point is land (inside the coastline polygon).
  virtual bool is_land(geo::Vec2 enu) const = 0;

  /// Island outline in ENU coordinates.
  virtual const geo::Polygon& coastline() const = 0;

  /// Projection between geographic and local ENU coordinates.
  virtual const geo::EnuProjection& projection() const = 0;

  /// Human-readable region name, e.g. "Oahu, Hawaii (synthetic DEM)".
  virtual const std::string& name() const = 0;

  /// Convenience: elevation at a geographic point.
  double elevation_at(geo::GeoPoint p) const {
    return elevation(projection().to_enu(p));
  }
};

/// Folds a terrain fingerprint into `d`: name, projection reference,
/// coastline vertices, and elevation probes at and around the coastline.
/// Two terrains that agree on all of these produce the same coastal mesh
/// and surge inputs for practical purposes; the fingerprint is mixed into
/// the engine-batch cache key so realizations computed on one terrain are
/// never served from a cache written under another.
void digest_terrain(const Terrain& terrain, util::Digest& d);

/// A mountain ridge modeled as a Gaussian profile around a line segment:
/// height * exp(-(distance to segment)^2 / (2 sigma^2)).
struct RidgeSegment {
  geo::GeoPoint start;
  geo::GeoPoint end;
  double height_m = 0.0;
  double sigma_m = 1.0;
};

/// Parameters of a synthetic volcanic-island terrain.
struct IslandParams {
  /// Region name used in reports.
  std::string name = "synthetic island";
  /// Coastline in geographic coordinates (implicitly closed).
  std::vector<geo::GeoPoint> coastline;
  /// Projection reference (typically the island centroid).
  geo::GeoPoint projection_reference;
  /// Mountain ridges added on top of the coastal plain.
  std::vector<RidgeSegment> ridges;
  /// Elevation right at the shoreline (m).
  double shore_elevation_m = 0.8;
  /// Coastal-plain rise per meter of inland distance (m/m).
  double plain_slope = 0.004;
  /// Nearshore seafloor drop per meter offshore (m/m).
  double nearshore_slope = 0.02;
  /// Offshore slope once past the shelf (m/m).
  double offshore_slope = 0.08;
  /// Shelf width over which the nearshore slope applies (m).
  double shelf_width_m = 3000.0;
  /// Maximum ocean depth (m, positive number).
  double max_depth_m = 4500.0;
};

/// Analytic island terrain built from IslandParams. Elevation is a smooth
/// deterministic function; there is no gridded raster, so resolution is
/// unlimited and queries are exact.
class SyntheticIslandTerrain final : public Terrain {
 public:
  explicit SyntheticIslandTerrain(IslandParams params);

  double elevation(geo::Vec2 enu) const override;
  bool is_land(geo::Vec2 enu) const override;
  const geo::Polygon& coastline() const override { return coast_enu_; }
  const geo::EnuProjection& projection() const override { return proj_; }
  const std::string& name() const override { return params_.name; }

  const IslandParams& params() const noexcept { return params_; }

 private:
  struct RidgeEnu {
    geo::Vec2 a;
    geo::Vec2 b;
    double height_m;
    double sigma_m;
  };

  double ridge_contribution(geo::Vec2 p) const noexcept;

  IslandParams params_;
  geo::EnuProjection proj_;
  geo::Polygon coast_enu_;
  std::vector<RidgeEnu> ridges_enu_;
};

}  // namespace ct::terrain
