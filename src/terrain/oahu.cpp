#include "terrain/oahu.h"

namespace ct::terrain {

IslandParams oahu_params() {
  IslandParams p;
  p.name = "Oahu, Hawaii (synthetic DEM)";
  // Approximate Oahu outline, counter-clockwise from KaÊ»ena Point (west tip).
  // Vertex density is higher along the south shore, where the case-study
  // assets sit and where surge resolution matters most.
  p.coastline = {
      {21.5750, -158.2800},  // KaÊ»ena Point
      {21.5000, -158.2250},  // MÄkaha
      {21.4450, -158.1900},  // WaiÊ»anae
      {21.3900, -158.1550},  // MÄÊ»ili
      {21.3540, -158.1310},  // Kahe Point
      {21.3100, -158.1050},  // Barbers Point
      {21.2980, -158.0500},  // Kalaeloa
      {21.3070, -158.0050},  // Ê»Ewa Beach
      {21.3180, -157.9750},  // Pearl Harbor entrance (west side)
      // Pearl Harbor: the inlet reaches ~7 km inland. Waiau sits at its
      // head; hurricane surge funnels up the lochs, which is exactly why
      // the paper finds Waiau flooded in every realization that floods
      // Honolulu.
      {21.3500, -157.9780},  // West Loch
      {21.3680, -157.9600},  // Middle Loch
      {21.3850, -157.9500},  // East Loch head (Waiau)
      {21.3650, -157.9430},  // East Loch east shore
      {21.3450, -157.9500},  // Ford Island channel
      {21.3300, -157.9550},  // harbor mouth east side
      {21.3220, -157.9550},  // Pearl Harbor entrance (east side)
      {21.3050, -157.9250},  // Airport reef runway
      {21.2920, -157.8700},  // Honolulu Harbor
      {21.2750, -157.8250},  // WaikÄ«kÄ«
      {21.2550, -157.8050},  // Diamond Head
      {21.2700, -157.7650},  // KÄhala
      {21.2800, -157.7100},  // Hawaiʻi Kai
      {21.3100, -157.6500},  // MakapuÊ»u Point
      {21.3400, -157.7000},  // WaimÄnalo
      {21.4000, -157.7400},  // Kailua
      {21.4700, -157.8300},  // KÄneÊ»ohe Bay
      {21.5500, -157.8700},  // KaÊ»aÊ»awa
      {21.6450, -157.9200},  // LÄÊ»ie
      {21.7100, -157.9800},  // Kahuku Point
      {21.6400, -158.0600},  // Waimea Bay
      {21.5900, -158.1100},  // HaleÊ»iwa
      {21.5800, -158.1900},  // MokulÄ“Ê»ia
  };
  p.projection_reference = {21.45, -157.95};  // island centroid-ish

  // WaiÊ»anae range (west, peak KaÊ»ala ~1220 m) and KoÊ»olau range (east,
  // crest ~600-960 m). Gaussian ridges: height and sigma tuned so coastal
  // sites stay on the plain and the interior rises realistically.
  p.ridges = {
      {{21.3800, -158.1200}, {21.5300, -158.1800}, 1100.0, 4000.0},  // WaiÊ»anae
      {{21.2900, -157.6900}, {21.5900, -157.9500}, 850.0, 3500.0},   // KoÊ»olau
  };

  p.shore_elevation_m = 0.8;
  p.plain_slope = 0.004;     // ~4 m per km on the coastal plain
  p.nearshore_slope = 0.02;  // reef shelf: 20 m depth 1 km offshore
  p.offshore_slope = 0.08;   // steep volcanic island flanks
  p.shelf_width_m = 3000.0;
  p.max_depth_m = 4500.0;
  return p;
}

std::unique_ptr<SyntheticIslandTerrain> make_oahu_terrain() {
  return std::make_unique<SyntheticIslandTerrain>(oahu_params());
}

}  // namespace ct::terrain
