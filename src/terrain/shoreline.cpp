#include "terrain/shoreline.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace ct::terrain {

std::vector<ShorePoint> sample_shoreline(const geo::Polygon& coast,
                                         double spacing) {
  if (spacing <= 0.0) {
    throw std::invalid_argument("sample_shoreline: spacing must be positive");
  }
  const auto& verts = coast.vertices();
  const std::size_t nverts = verts.size();

  // Cumulative arclength of the closed boundary: cum[i] is the distance from
  // vertex 0 to vertex i along the outline; cum[nverts] is the perimeter.
  std::vector<double> cum(nverts + 1, 0.0);
  for (std::size_t i = 0; i < nverts; ++i) {
    cum[i + 1] = cum[i] + geo::distance(verts[i], verts[(i + 1) % nverts]);
  }
  const double perimeter = cum[nverts];
  if (perimeter <= 0.0) {
    throw std::invalid_argument("sample_shoreline: degenerate polygon");
  }

  std::vector<ShorePoint> out;
  out.reserve(static_cast<std::size_t>(perimeter / spacing) + 1);
  std::size_t seg = 0;
  for (double s = 0.0; s < perimeter; s += spacing) {
    while (seg + 1 < nverts && cum[seg + 1] <= s) ++seg;
    const geo::Vec2 a = verts[seg];
    const geo::Vec2 b = verts[(seg + 1) % nverts];
    const double seg_len = cum[seg + 1] - cum[seg];
    const double t = seg_len > 0.0 ? (s - cum[seg]) / seg_len : 0.0;
    const geo::Vec2 pos = a + (b - a) * t;
    const geo::Vec2 tangent = (b - a).normalized();
    // Outward normal: the perpendicular whose offset point lies outside.
    // The polygon spans kilometers, so a 1 m probe is safely local.
    geo::Vec2 n = tangent.perp().normalized();
    if (coast.contains(pos + n * 1.0)) n = n * -1.0;
    out.push_back({pos, n, s});
  }
  return out;
}

std::size_t nearest_shore_point(const std::vector<ShorePoint>& shore,
                                geo::Vec2 p) noexcept {
  std::size_t best = 0;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < shore.size(); ++i) {
    const double d2 = (shore[i].position - p).norm2();
    if (d2 < best_d2) {
      best_d2 = d2;
      best = i;
    }
  }
  return best;
}

}  // namespace ct::terrain
