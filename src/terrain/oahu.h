// Built-in synthetic Oahu terrain: a ~25-vertex coastline tracing the real
// island outline, plus the two real mountain ranges (WaiÊ»anae and KoÊ»olau)
// as Gaussian ridge fields. This is the substitution for the real DEM /
// ADCIRC mesh used by the paper (see DESIGN.md §2).
#pragma once

#include <memory>

#include "terrain/terrain.h"

namespace ct::terrain {

/// Parameters for the synthetic Oahu island (exposed so tests can assert
/// properties of the geography independent of the Terrain interface).
IslandParams oahu_params();

/// Constructs the synthetic Oahu terrain.
std::unique_ptr<SyntheticIslandTerrain> make_oahu_terrain();

/// Geographic coordinates of named Oahu locations used by the case study.
/// These are the real coordinates of the sites discussed in the paper
/// (control centers, data centers, power plants).
namespace oahu_sites {
inline constexpr geo::GeoPoint kHonolulu{21.3069, -157.8583};
inline constexpr geo::GeoPoint kWaiau{21.3859, -157.9451};
inline constexpr geo::GeoPoint kKahe{21.3542, -158.1297};
inline constexpr geo::GeoPoint kDrFortress{21.3394, -157.9208};
inline constexpr geo::GeoPoint kAlohaNap{21.3083, -157.8639};
inline constexpr geo::GeoPoint kKalaeloa{21.3042, -158.0892};
inline constexpr geo::GeoPoint kWaialua{21.5764, -158.1236};
inline constexpr geo::GeoPoint kKoolau{21.4014, -157.7911};
inline constexpr geo::GeoPoint kWahiawa{21.5028, -158.0236};
inline constexpr geo::GeoPoint kAirport{21.3245, -157.9251};
}  // namespace oahu_sites

}  // namespace ct::terrain
