// Shoreline sampling: turns the coastline polygon into evenly spaced
// shoreline stations with outward normals. Surge is evaluated at these
// stations and then extended onto land (paper §V-A post-processing).
#pragma once

#include <vector>

#include "geo/polygon.h"
#include "geo/vec2.h"

namespace ct::terrain {

/// One shoreline station.
struct ShorePoint {
  geo::Vec2 position;        ///< ENU meters.
  geo::Vec2 outward_normal;  ///< Unit vector pointing offshore.
  double arclength = 0.0;    ///< Distance along the shoreline from station 0.
};

/// Samples the polygon boundary every `spacing` meters (the final segment
/// may be shorter). Outward normals point away from the polygon interior.
/// The winding order of `coast` does not matter.
std::vector<ShorePoint> sample_shoreline(const geo::Polygon& coast,
                                         double spacing);

/// Index of the shoreline station nearest to `p` (linear scan; callers that
/// need many queries should build a geo::GridIndex over the positions).
std::size_t nearest_shore_point(const std::vector<ShorePoint>& shore,
                                geo::Vec2 p) noexcept;

}  // namespace ct::terrain
