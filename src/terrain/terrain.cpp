#include "terrain/terrain.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ct::terrain {

SyntheticIslandTerrain::SyntheticIslandTerrain(IslandParams params)
    : params_(std::move(params)), proj_(params_.projection_reference) {
  if (params_.coastline.size() < 3) {
    throw std::invalid_argument("SyntheticIslandTerrain: coastline too small");
  }
  std::vector<geo::Vec2> enu;
  enu.reserve(params_.coastline.size());
  for (const geo::GeoPoint p : params_.coastline) {
    enu.push_back(proj_.to_enu(p));
  }
  coast_enu_ = geo::Polygon(std::move(enu));
  ridges_enu_.reserve(params_.ridges.size());
  for (const RidgeSegment& r : params_.ridges) {
    ridges_enu_.push_back({proj_.to_enu(r.start), proj_.to_enu(r.end),
                           r.height_m, r.sigma_m});
  }
}

double SyntheticIslandTerrain::ridge_contribution(geo::Vec2 p) const noexcept {
  double total = 0.0;
  for (const RidgeEnu& r : ridges_enu_) {
    const geo::Vec2 q = geo::closest_point_on_segment(r.a, r.b, p);
    const double d = geo::distance(p, q);
    total += r.height_m * std::exp(-(d * d) / (2.0 * r.sigma_m * r.sigma_m));
  }
  return total;
}

bool SyntheticIslandTerrain::is_land(geo::Vec2 enu) const {
  return coast_enu_.contains(enu);
}

double SyntheticIslandTerrain::elevation(geo::Vec2 enu) const {
  const double shore_dist = coast_enu_.distance_to_boundary(enu);
  if (coast_enu_.contains(enu)) {
    // Coastal plain rising inland, plus ridge fields.
    const double plain =
        params_.shore_elevation_m + params_.plain_slope * shore_dist;
    return plain + ridge_contribution(enu);
  }
  // Ocean: shelf with a gentle slope, then a steeper offshore drop.
  double depth;
  if (shore_dist <= params_.shelf_width_m) {
    depth = params_.nearshore_slope * shore_dist;
  } else {
    depth = params_.nearshore_slope * params_.shelf_width_m +
            params_.offshore_slope * (shore_dist - params_.shelf_width_m);
  }
  depth = std::min(depth, params_.max_depth_m);
  return -depth;
}

}  // namespace ct::terrain
