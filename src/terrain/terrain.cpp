#include "terrain/terrain.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ct::terrain {

void digest_terrain(const Terrain& terrain, util::Digest& d) {
  d.str("ct-terrain");
  d.str(terrain.name());
  const geo::GeoPoint ref = terrain.projection().reference();
  d.f64(ref.lat_deg).f64(ref.lon_deg);

  const geo::Polygon& coast = terrain.coastline();
  const std::vector<geo::Vec2>& verts = coast.vertices();
  d.u64(verts.size());
  for (const geo::Vec2 v : verts) d.f64(v.x).f64(v.y);

  // Elevation probes: centroid plus, per coastline vertex, samples on the
  // vertex, pulled inland toward the centroid, and pushed offshore away
  // from it. Captures plain slope, shelf, and ridge placement without
  // assuming anything about the Terrain implementation.
  const geo::Vec2 c = coast.centroid();
  d.f64(terrain.elevation(c));
  for (const geo::Vec2 v : verts) {
    const geo::Vec2 inland = c + (v - c) * 0.5;
    const geo::Vec2 offshore = c + (v - c) * 1.25;
    d.f64(terrain.elevation(v))
        .f64(terrain.elevation(inland))
        .f64(terrain.elevation(offshore));
  }
}

SyntheticIslandTerrain::SyntheticIslandTerrain(IslandParams params)
    : params_(std::move(params)), proj_(params_.projection_reference) {
  if (params_.coastline.size() < 3) {
    throw std::invalid_argument("SyntheticIslandTerrain: coastline too small");
  }
  std::vector<geo::Vec2> enu;
  enu.reserve(params_.coastline.size());
  for (const geo::GeoPoint p : params_.coastline) {
    enu.push_back(proj_.to_enu(p));
  }
  coast_enu_ = geo::Polygon(std::move(enu));
  ridges_enu_.reserve(params_.ridges.size());
  for (const RidgeSegment& r : params_.ridges) {
    ridges_enu_.push_back({proj_.to_enu(r.start), proj_.to_enu(r.end),
                           r.height_m, r.sigma_m});
  }
}

double SyntheticIslandTerrain::ridge_contribution(geo::Vec2 p) const noexcept {
  double total = 0.0;
  for (const RidgeEnu& r : ridges_enu_) {
    const geo::Vec2 q = geo::closest_point_on_segment(r.a, r.b, p);
    const double d = geo::distance(p, q);
    total += r.height_m * std::exp(-(d * d) / (2.0 * r.sigma_m * r.sigma_m));
  }
  return total;
}

bool SyntheticIslandTerrain::is_land(geo::Vec2 enu) const {
  return coast_enu_.contains(enu);
}

double SyntheticIslandTerrain::elevation(geo::Vec2 enu) const {
  const double shore_dist = coast_enu_.distance_to_boundary(enu);
  if (coast_enu_.contains(enu)) {
    // Coastal plain rising inland, plus ridge fields.
    const double plain =
        params_.shore_elevation_m + params_.plain_slope * shore_dist;
    return plain + ridge_contribution(enu);
  }
  // Ocean: shelf with a gentle slope, then a steeper offshore drop.
  double depth;
  if (shore_dist <= params_.shelf_width_m) {
    depth = params_.nearshore_slope * shore_dist;
  } else {
    depth = params_.nearshore_slope * params_.shelf_width_m +
            params_.offshore_slope * (shore_dist - params_.shelf_width_m);
  }
  depth = std::min(depth, params_.max_depth_m);
  return -depth;
}

}  // namespace ct::terrain
