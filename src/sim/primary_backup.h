// Primary-backup SCADA masters (industry-standard architectures "2" and
// "2-2"): a primary SM serving requests, a hot standby promoted via
// heartbeat watchdog within seconds, and — for two-site configurations — a
// cold backup site activated by a failover controller after a delay of
// minutes (the paper's orange state).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/flat.h"
#include "sim/invariants.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/state_transfer.h"
#include "sim/workload.h"

namespace ct::sim {

struct PbOptions {
  double heartbeat_interval_s = 1.0;
  double heartbeat_timeout_s = 5.0;
  /// Cold-site activation delay ("on the order of minutes" in the paper).
  double activation_delay_s = 300.0;
  /// Failover-controller polling interval and outage threshold.
  double controller_check_interval_s = 5.0;
  double controller_outage_threshold_s = 20.0;
  /// Executed-log sync budget for a promoted/reactivated/restarted SM.
  /// Deliberately tight and FAIL-OPEN: primary-backup trades consistency
  /// for availability, so a sync that cannot reach a peer serves from the
  /// local log rather than refusing service.
  StateTransferOptions sync{1.0, {1.0, 2.0, 4.0, 0.0}, 2};
  /// Backoff schedule for kActivate retransmissions until an ack arrives.
  BackoffPolicy activation_retry{3.0, 2.0, 24.0, 0.0};
  /// Cap on kActivate attempts; 0 = keep retrying until acked or the
  /// monitoring window ends. 1 reproduces the legacy fire-and-forget send.
  int activation_max_attempts = 0;
};

/// One primary-backup SCADA master.
class PbReplica {
 public:
  /// `self.node == 0` is the initial primary of an active site.
  PbReplica(Simulator& sim, Network& net, NodeAddr self, PbOptions options,
            bool site_initially_active);

  /// Marks the replica as attacker-controlled: it answers every request
  /// with a forged result.
  void set_compromised(bool compromised) noexcept;
  bool compromised() const noexcept { return compromised_; }
  bool is_primary() const noexcept { return primary_; }
  bool site_active() const noexcept { return active_; }

  /// Fault injection: the node's host just came back from a crash or site
  /// flap — a serving primary re-syncs its log before serving again.
  void on_restart();

  /// True while the executed-log sync is in flight (replica holds off
  /// serving; heartbeats keep flowing so the peer does not double-promote).
  bool syncing() const noexcept { return syncing_; }
  std::size_t executed_count() const noexcept { return executed_.size(); }
  RejoinStats rejoin_stats() const;

  /// Wires the invariant monitor (compromise accounting).
  void set_monitor(InvariantMonitor* monitor) noexcept { monitor_ = monitor; }

  /// Fault injection: scales the heartbeat watchdog timeout (clock skew).
  void set_timeout_scale(double scale) noexcept { timeout_scale_ = scale; }
  double timeout_scale() const noexcept { return timeout_scale_; }

  /// Starts heartbeat/watchdog loops. Call once before the run.
  void start();

 private:
  void on_message(const Message& msg);
  void heartbeat_loop();
  void watchdog_loop();
  void become_primary();
  void start_sync(const char* reason);

  Simulator& sim_;
  Network& net_;
  NodeAddr self_;
  PbOptions options_;
  bool active_;       ///< Site is serving (false while cold).
  bool primary_;      ///< This replica is the serving SM.
  bool compromised_ = false;
  bool activation_pending_ = false;
  bool syncing_ = false;
  double last_heartbeat_ = 0.0;
  InvariantMonitor* monitor_ = nullptr;
  double timeout_scale_ = 1.0;
  /// Request ids this SM has served (the log a successor syncs).
  FlatSet<std::int64_t> executed_;
  /// Drives the executed-log sync (matching_needed = 1, fail-open).
  std::unique_ptr<StateTransferClient> sync_;
};

/// Failover controller for two-site primary-backup and BFT architectures:
/// sits with the operators (client site), watches service health, and
/// activates the cold backup site when the active site stops answering.
class FailoverController {
 public:
  FailoverController(Simulator& sim, Network& net, NodeAddr self,
                     const ClientWorkload& workload, int backup_site,
                     PbOptions options);

  /// Starts the monitoring loop over [start, end).
  void start(double start_s, double end_s);

  bool activation_sent() const noexcept { return activation_attempts_ > 0; }
  /// True once every backup-site node acknowledged an activation command.
  /// Per-node acks matter: a partially delivered kActivate broadcast can
  /// leave a BFT backup group permanently below quorum.
  bool activation_acked() const noexcept;
  /// kActivate transmissions so far (first send + retransmissions).
  int activation_attempts() const noexcept { return activation_attempts_; }

 private:
  void check();
  void send_activate();
  double last_success_time() const;

  Simulator& sim_;
  Network& net_;
  NodeAddr self_;
  const ClientWorkload& workload_;
  int backup_site_;
  PbOptions options_;
  double start_s_ = 0.0;
  double end_s_ = 0.0;
  int activation_attempts_ = 0;
  /// Backup-site nodes that acked kActivate so far.
  FlatSet<int> acked_nodes_;
};

}  // namespace ct::sim
