// Reference (pre-overhaul) DES engine, kept verbatim as the bit-identity
// oracle for the pooled hot path. Every class below is the engine exactly
// as it was before the overhaul: std::function events on a binary
// priority_queue, Message copied per delivery, std::map/std::set protocol
// bookkeeping, unconditional trace() call sites. Do not "improve" this
// file — its only job is to stay byte-for-byte faithful to the old
// behaviour so des_fastpath_test can prove the fast engine identical.
// Shared leaf types (NodeAddr, Message, the option structs, FaultPlan,
// DesOutcome, ...) come from the live headers; only the engine classes are
// duplicated here, under internal linkage.
#include "sim/reference_des.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "scada/requirements.h"
#include "util/log.h"
#include "util/rng.h"

namespace ct::sim::refdes {
namespace {

class Simulator {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` to run at absolute time `t` (must be >= now()).
  /// Events scheduled for the same instant run in scheduling order.
  void schedule_at(SimTime t, Action action);
  /// Schedules `action` `delay` seconds from now.
  void schedule_in(SimTime delay, Action action);

  /// Runs events until the queue is empty or the next event is after
  /// `end_time`; `now()` ends at `end_time`.
  void run_until(SimTime end_time);

  SimTime now() const noexcept { return now_; }
  std::uint64_t events_processed() const noexcept { return processed_; }

  /// Safety valve: run_until stops once this many events have been
  /// processed in total (0 = unlimited). Guards against protocol storms
  /// consuming unbounded memory; `event_limit_hit()` reports whether a run
  /// was truncated.
  void set_event_limit(std::uint64_t limit) noexcept { event_limit_ = limit; }
  bool event_limit_hit() const noexcept { return limit_hit_; }

  /// Trace log: cheap structured breadcrumbs ("who did what when") used by
  /// the des_replay example. Disabled by default.
  void set_tracing(bool enabled) noexcept { tracing_ = enabled; }
  bool tracing() const noexcept { return tracing_; }
  void trace(const std::string& line);
  const std::vector<std::string>& trace_log() const noexcept { return trace_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // FIFO tie-break
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t event_limit_ = 0;
  bool limit_hit_ = false;
  bool tracing_ = false;
  std::vector<std::string> trace_;
};

class Network {
 public:
  using Handler = std::function<void(const Message&)>;

  /// `nodes_per_site[s]` is the number of processes at site s.
  Network(Simulator& sim, std::vector<int> nodes_per_site,
          NetworkOptions options = {});

  int site_count() const noexcept { return static_cast<int>(nodes_per_site_.size()); }
  int nodes_at(int site) const { return nodes_per_site_.at(static_cast<std::size_t>(site)); }

  /// Installs the receive handler for a node (replaces any previous one).
  void register_handler(NodeAddr addr, Handler handler);

  /// Site failure controls.
  void set_site_down(int site, bool down);
  void set_site_isolated(int site, bool isolated);
  bool site_down(int site) const;
  bool site_isolated(int site) const;

  /// Node crash control (fault injection): a crashed node neither sends
  /// nor receives; its protocol timers keep running, modeling a process
  /// whose host is temporarily off the network and restarts with state.
  void set_node_crashed(NodeAddr addr, bool crashed);
  bool node_crashed(NodeAddr addr) const;

  /// Link flapping (fault injection): takes down traffic between two
  /// specific sites without touching either site's health. Order of the
  /// pair does not matter.
  void set_link_down(int site_a, int site_b, bool down);
  bool link_down(int site_a, int site_b) const;

  /// True when a message from `from` would currently be delivered to `to`.
  bool can_communicate(NodeAddr from, NodeAddr to) const;

  /// Sends a message; delivery is scheduled after the link latency if the
  /// two nodes can communicate AT SEND TIME and the destination site is
  /// still up at delivery (in-flight traffic into a newly flooded site is
  /// dropped).
  void send(NodeAddr from, NodeAddr to, Message msg);

  /// Sends to every node of every site except the sender itself.
  void broadcast(NodeAddr from, Message msg);

  /// Sends to every node at `site` (excluding `from` if it lives there).
  void send_to_site(NodeAddr from, int site, Message msg);

  std::uint64_t messages_sent() const noexcept { return sent_; }
  std::uint64_t messages_delivered() const noexcept { return delivered_; }
  /// Total drops across all causes (legacy single-counter view).
  std::uint64_t messages_dropped() const noexcept { return drops_.total(); }
  /// Drops broken down by cause.
  const DropCounters& drop_counters() const noexcept { return drops_; }
  /// Extra deliveries caused by duplication.
  std::uint64_t messages_duplicated() const noexcept { return duplicated_; }

 private:
  std::size_t flat_index(NodeAddr a) const;
  void check_addr(NodeAddr a) const;
  void deliver(NodeAddr to, const Message& msg, double latency);

  Simulator& sim_;
  std::vector<int> nodes_per_site_;
  NetworkOptions options_;
  std::vector<Handler> handlers_;     // flat, indexed by flat_index
  std::vector<std::size_t> offsets_;  // site -> first flat index
  std::vector<bool> down_;
  std::vector<bool> isolated_;
  std::vector<bool> crashed_;         // flat, indexed by flat_index
  std::vector<bool> link_down_;       // site_count^2, symmetric
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t duplicated_ = 0;
  DropCounters drops_;
  util::Rng impairment_rng_;
};

class StateTransferClient {
 public:
  struct Result {
    /// Ids vouched for by >= matching_needed matching replies (sorted).
    std::vector<std::int64_t> ids;
    /// The agreed checkpoint certificate.
    std::int64_t count = 0;
    std::int64_t digest = 0;
    int rounds = 1;
    double elapsed_s = 0.0;
  };

  struct Callbacks {
    /// Sends one round's kStateRequest(s); `epoch` must ride in
    /// Message::request_id so replies can be matched to this transfer.
    std::function<void(std::int64_t epoch)> send_request;
    /// Enough matching replies arrived; install the result.
    std::function<void(const Result&)> install;
    /// The retry budget is exhausted; degrade.
    std::function<void(int rounds)> fail;
  };

  StateTransferClient(Simulator& sim, StateTransferOptions options,
                      int matching_needed, Callbacks callbacks);

  /// Starts (or restarts) a transfer with a fresh epoch and a fresh retry
  /// budget. Any in-flight transfer is superseded.
  void begin();
  /// Cancels an in-flight transfer (counts as neither success nor failure).
  void abort();
  /// Feeds a kStateReply; stale-epoch and duplicate-sender replies are
  /// ignored, fresh ones may complete the transfer.
  void on_reply(const Message& msg);

  bool in_progress() const noexcept { return in_progress_; }
  std::int64_t epoch() const noexcept { return epoch_; }

  // Lifetime accounting (summed over every transfer this client ran).
  int transfers_completed() const noexcept { return completed_; }
  int transfers_failed() const noexcept { return failed_; }
  /// Rounds beyond the first, summed over all transfers (retry pressure).
  int retry_rounds() const noexcept { return retry_rounds_; }
  /// Longest begin()-to-install latency observed (s).
  double max_catchup_s() const noexcept { return max_catchup_s_; }

 private:
  struct Reply {
    std::int64_t count = 0;
    std::int64_t digest = 0;
    std::vector<std::int64_t> ids;
  };

  void send_round();
  void round_timed_out(std::int64_t epoch, int round);
  void try_complete();

  Simulator& sim_;
  StateTransferOptions options_;
  int matching_needed_;
  Callbacks callbacks_;

  bool in_progress_ = false;
  std::int64_t epoch_ = 0;
  int round_ = 0;
  double started_at_ = 0.0;
  /// Distinct sender -> latest reply (accumulated across rounds).
  std::map<std::pair<int, int>, Reply> replies_;

  int completed_ = 0;
  int failed_ = 0;
  int retry_rounds_ = 0;
  double max_catchup_s_ = 0.0;
};

class InvariantMonitor {
 public:
  InvariantMonitor(Simulator& sim, InvariantOptions options);

  // ---- wiring: called by the protocol objects during the run ----

  /// A correct replica of `group` executed `request_id` at slot
  /// (view, seq). The slot is per-view because this simulator's BFT
  /// leaders do not transfer their sequence counter across view changes
  /// (the same request may legitimately re-commit at a fresh seq after a
  /// view change); within a view, one slot maps to exactly one request.
  void on_execute(NodeAddr replica, int group, std::int64_t view,
                  std::int64_t seq, std::int64_t request_id);
  /// A replica fell to the attacker.
  void on_compromise(NodeAddr replica);
  /// The client accepted a result (corrupt = forged signature quorum).
  void on_client_accept(std::int64_t request_id, bool corrupt);
  /// A correct replica of `group` voted for checkpoint (count, digest).
  void on_checkpoint(NodeAddr replica, int group, std::int64_t count,
                     std::int64_t digest);
  /// A rejoining replica of `group` installed transferred state claiming
  /// certificate (count, digest). Unless the install is trivial
  /// (count == 0), the certificate must match some checkpoint a correct
  /// replica voted for — otherwise the transfer handed the rejoiner
  /// divergent state.
  void on_state_install(NodeAddr replica, int group, std::int64_t count,
                        std::int64_t digest);

  // ---- declared expectations ----

  /// Excuses liveness over [from, to): flood/attack effects and scheduled
  /// fault windows are declared up front, so only *unexplained* outages
  /// count as violations.
  void declare_outage(double from, double to);

  /// Runs the liveness check over [judge_from, judge_to) against the
  /// correct-completion timestamps observed so far. Call once, after the
  /// simulation finishes.
  void finalize(double judge_from, double judge_to);

  int compromised_count() const noexcept {
    return static_cast<int>(compromised_.size());
  }
  const std::vector<std::string>& violations() const noexcept {
    return violations_;
  }
  bool ok() const noexcept { return violations_.empty(); }

 private:
  void record(const std::string& violation);
  /// Longest sub-interval of [from, to] not covered by declared outages.
  double uncovered_span(double from, double to) const;

  Simulator& sim_;
  InvariantOptions options_;
  /// (group, view, seq) -> first (request_id, replica) committed there.
  std::map<std::tuple<int, std::int64_t, std::int64_t>,
           std::pair<std::int64_t, NodeAddr>>
      committed_;
  std::set<std::pair<int, int>> compromised_;  // (site, node)
  /// group -> checkpoint certificates (count, digest) correct replicas
  /// voted for; installs are validated against this set.
  std::map<int, std::set<std::pair<std::int64_t, std::int64_t>>> checkpoints_;
  std::vector<std::pair<double, double>> outages_;  // merged lazily
  std::vector<double> correct_accepts_;
  std::vector<std::string> violations_;
};

class ClientWorkload {
 public:
  /// One per-request outcome record.
  struct RequestRecord {
    std::int64_t id = 0;
    double sent_at = 0.0;
    double completed_at = -1.0;  ///< -1 while incomplete.
    bool corrupt = false;        ///< Accepted signature was forged.
  };

  ClientWorkload(Simulator& sim, Network& net, NodeAddr self,
                 WorkloadOptions options = {});

  /// Replicas that receive each request.
  void set_targets(std::vector<NodeAddr> targets);

  /// Wires the invariant monitor: every accepted result is reported, so
  /// the monitor can flag forged accepts and judge liveness.
  void set_monitor(InvariantMonitor* monitor) noexcept { monitor_ = monitor; }

  /// Issues requests every interval in [start, end).
  void start(double start_s, double end_s);

  /// True once any corrupt signature was accepted.
  bool safety_violated() const noexcept { return safety_violated_; }
  /// Time of the first accepted corrupt result (-1 when none).
  double first_violation_at() const noexcept { return first_violation_at_; }

  const std::vector<RequestRecord>& records() const noexcept { return records_; }

  /// Fraction of requests issued in [from, to] that completed correctly
  /// within the timeout. Returns 0 when no requests were issued there.
  double success_fraction(double from, double to) const;

  /// Longest service gap in [from, to]: the maximum distance between
  /// consecutive correct completions (window edges count as endpoints).
  double max_gap(double from, double to) const;

  /// Availability time series: success_fraction over consecutive buckets of
  /// `bucket_s` covering [from, to). Buckets with no issued requests read
  /// as -1 (no data). Used by the des_replay example to show the outage
  /// and recovery shape of an incident.
  std::vector<double> availability_series(double bucket_s, double from,
                                          double to) const;

  NodeAddr address() const noexcept { return self_; }

 private:
  void issue();
  void on_message(const Message& msg);
  void schedule_retransmit(std::int64_t request_id, int remaining);

  Simulator& sim_;
  Network& net_;
  NodeAddr self_;
  WorkloadOptions options_;
  std::vector<NodeAddr> targets_;
  double end_s_ = 0.0;

  std::int64_t next_id_ = 1;
  std::vector<RequestRecord> records_;
  std::map<std::int64_t, std::size_t> record_index_;

  /// Reply signature accumulation: request id -> (value, corrupt) ->
  /// distinct sender flat keys.
  struct Signature {
    std::int64_t value;
    bool corrupt;
    auto operator<=>(const Signature&) const = default;
  };
  std::map<std::int64_t, std::map<Signature, std::set<std::pair<int, int>>>>
      pending_replies_;

  bool safety_violated_ = false;
  double first_violation_at_ = -1.0;
  InvariantMonitor* monitor_ = nullptr;
  /// Jitter stream for retransmission backoff (seeded, replayable).
  util::Rng retransmit_rng_;
};

class PbReplica {
 public:
  /// `self.node == 0` is the initial primary of an active site.
  PbReplica(Simulator& sim, Network& net, NodeAddr self, PbOptions options,
            bool site_initially_active);

  /// Marks the replica as attacker-controlled: it answers every request
  /// with a forged result.
  void set_compromised(bool compromised) noexcept;
  bool compromised() const noexcept { return compromised_; }
  bool is_primary() const noexcept { return primary_; }
  bool site_active() const noexcept { return active_; }

  /// Fault injection: the node's host just came back from a crash or site
  /// flap — a serving primary re-syncs its log before serving again.
  void on_restart();

  /// True while the executed-log sync is in flight (replica holds off
  /// serving; heartbeats keep flowing so the peer does not double-promote).
  bool syncing() const noexcept { return syncing_; }
  std::size_t executed_count() const noexcept { return executed_.size(); }
  RejoinStats rejoin_stats() const;

  /// Wires the invariant monitor (compromise accounting).
  void set_monitor(InvariantMonitor* monitor) noexcept { monitor_ = monitor; }

  /// Fault injection: scales the heartbeat watchdog timeout (clock skew).
  void set_timeout_scale(double scale) noexcept { timeout_scale_ = scale; }
  double timeout_scale() const noexcept { return timeout_scale_; }

  /// Starts heartbeat/watchdog loops. Call once before the run.
  void start();

 private:
  void on_message(const Message& msg);
  void heartbeat_loop();
  void watchdog_loop();
  void become_primary();
  void start_sync(const char* reason);

  Simulator& sim_;
  Network& net_;
  NodeAddr self_;
  PbOptions options_;
  bool active_;       ///< Site is serving (false while cold).
  bool primary_;      ///< This replica is the serving SM.
  bool compromised_ = false;
  bool activation_pending_ = false;
  bool syncing_ = false;
  double last_heartbeat_ = 0.0;
  InvariantMonitor* monitor_ = nullptr;
  double timeout_scale_ = 1.0;
  /// Request ids this SM has served (the log a successor syncs).
  std::set<std::int64_t> executed_;
  /// Drives the executed-log sync (matching_needed = 1, fail-open).
  std::unique_ptr<StateTransferClient> sync_;
};

class FailoverController {
 public:
  FailoverController(Simulator& sim, Network& net, NodeAddr self,
                     const ClientWorkload& workload, int backup_site,
                     PbOptions options);

  /// Starts the monitoring loop over [start, end).
  void start(double start_s, double end_s);

  bool activation_sent() const noexcept { return activation_attempts_ > 0; }
  /// True once every backup-site node acknowledged an activation command.
  /// Per-node acks matter: a partially delivered kActivate broadcast can
  /// leave a BFT backup group permanently below quorum.
  bool activation_acked() const noexcept;
  /// kActivate transmissions so far (first send + retransmissions).
  int activation_attempts() const noexcept { return activation_attempts_; }

 private:
  void check();
  void send_activate();
  double last_success_time() const;

  Simulator& sim_;
  Network& net_;
  NodeAddr self_;
  const ClientWorkload& workload_;
  int backup_site_;
  PbOptions options_;
  double start_s_ = 0.0;
  double end_s_ = 0.0;
  int activation_attempts_ = 0;
  /// Backup-site nodes that acked kActivate so far.
  std::set<int> acked_nodes_;
};

class BftReplica {
 public:
  /// `group` lists every member's address; `index` is this replica's slot
  /// in it. The leader of view v is group[v mod n]. Interleave sites in the
  /// group order so consecutive views land on different sites.
  BftReplica(Simulator& sim, Network& net, NodeAddr self,
             std::vector<NodeAddr> group, int index, BftOptions options,
             bool group_initially_active);

  void set_compromised(bool compromised) noexcept;
  bool compromised() const noexcept { return compromised_; }

  /// Proactive recovery control (driven by RecoveryScheduler).
  void begin_recovery();
  void end_recovery();
  bool recovering() const noexcept { return recovering_; }

  /// Fault injection: the node's host just came back from a crash or site
  /// flap — re-enter the group through a catch-up transfer.
  void on_restart();

  /// Wires the invariant monitor; `group_id` distinguishes replication
  /// groups when a configuration runs several.
  void set_monitor(InvariantMonitor* monitor, int group_id) noexcept {
    monitor_ = monitor;
    group_id_ = group_id;
  }

  /// Fault injection: scales the view-change timeout (clock skew).
  void set_timeout_scale(double scale) noexcept { timeout_scale_ = scale; }
  double timeout_scale() const noexcept { return timeout_scale_; }

  /// Starts the view watchdog. Call once before the run.
  void start();

  std::int64_t view() const noexcept { return view_; }
  bool group_active() const noexcept { return active_; }
  std::size_t executed_count() const noexcept { return executed_.size(); }

  /// True while a catch-up transfer is in flight (replica overhears the
  /// ordering protocol and answers state requests, but does not serve
  /// clients or propose).
  bool catching_up() const noexcept { return catching_up_; }
  /// True after a catch-up transfer exhausted its retry budget: the
  /// replica has degraded out of the group instead of wedging it.
  bool passive() const noexcept { return passive_; }
  /// Latest stable checkpoint certificate this replica holds.
  std::int64_t stable_checkpoint_count() const noexcept { return stable_count_; }
  /// Stable checkpoints this replica saw form (f+1 matching votes).
  int checkpoints_formed() const noexcept { return checkpoints_formed_; }
  RejoinStats rejoin_stats() const;

 private:
  void on_message(const Message& msg);
  void on_request(const Message& msg);
  void on_proposal(const Message& msg);
  void on_accept(const Message& msg);
  void on_view_change(const Message& msg);
  void on_checkpoint_vote(const Message& msg);
  void on_state_request(const Message& msg);
  void watchdog_loop();
  void propose_pending();
  void broadcast_to_group(const Message& msg);
  bool is_leader() const;
  void execute(std::int64_t request_id, std::int64_t view, std::int64_t seq);
  /// Current executed set as a sorted id list (checkpoint/transfer input).
  std::vector<std::int64_t> executed_ids() const;
  void maybe_broadcast_checkpoint();
  void tally_checkpoint_vote(int voter_index, std::int64_t count,
                             std::int64_t digest);
  /// Reclaims per-request ordering state made redundant by the stable
  /// checkpoint (re-proposals of reclaimed ids simply re-vote).
  void gc_below_stable();
  void begin_catchup(const char* reason);
  void install_state(const StateTransferClient::Result& result);
  void catchup_failed(int rounds);

  Simulator& sim_;
  Network& net_;
  NodeAddr self_;
  std::vector<NodeAddr> group_;
  int index_;
  BftOptions options_;
  int quorum_;
  bool active_;
  bool activation_pending_ = false;
  bool compromised_ = false;
  bool recovering_ = false;
  bool catching_up_ = false;
  bool passive_ = false;
  InvariantMonitor* monitor_ = nullptr;
  int group_id_ = 0;
  double timeout_scale_ = 1.0;

  std::int64_t view_ = 0;
  std::int64_t next_seq_ = 0;
  double last_progress_ = 0.0;

  /// request id -> client address (pending, not yet executed).
  std::map<std::int64_t, NodeAddr> pending_;
  /// request id -> distinct accept voters.
  std::map<std::int64_t, std::set<int>> accept_votes_;
  /// proposals this replica has already voted for (request ids).
  std::set<std::int64_t> voted_;
  /// requests this leader already proposed in the current view (cleared on
  /// view change) — prevents re-proposal storms.
  std::set<std::int64_t> proposed_this_view_;
  /// highest view in which this replica re-announced its vote per request
  /// — bounds vote re-broadcasts to one per (request, view).
  std::map<std::int64_t, std::int64_t> announced_view_;
  /// executed request ids -> client address (for late replies).
  std::map<std::int64_t, NodeAddr> executed_;
  /// view -> distinct view-change voters (for catching up).
  std::map<std::int64_t, std::set<int>> view_votes_;

  /// Latest stable checkpoint certificate (f+1 matching votes).
  std::int64_t stable_count_ = 0;
  std::int64_t stable_digest_ = 0;
  int executions_since_checkpoint_ = 0;
  int checkpoints_formed_ = 0;
  /// (count, digest) -> distinct checkpoint voters.
  std::map<std::pair<std::int64_t, std::int64_t>, std::set<int>>
      checkpoint_votes_;
  /// Drives rejoin catch-up after recovery / restart / cold activation.
  std::unique_ptr<StateTransferClient> transfer_;
};

class RecoveryScheduler {
 public:
  RecoveryScheduler(Simulator& sim, std::vector<BftReplica*> replicas,
                    BftOptions options);

  /// Starts the rotation at `start_s`.
  void start(double start_s);

 private:
  void rotate();

  Simulator& sim_;
  std::vector<BftReplica*> replicas_;
  BftOptions options_;
  std::size_t next_ = 0;
};

class FaultInjector {
 public:
  struct Hooks {
    /// Applies a timeout-clock scale factor to one node (1.0 = nominal).
    std::function<void(NodeAddr, double)> set_timeout_scale;
    /// Hands one node to the attacker.
    std::function<void(NodeAddr)> compromise;
    /// The node's host just came back (crash window or site flap ended):
    /// replicas use this to run their rejoin catch-up.
    std::function<void(NodeAddr)> restart;
  };

  FaultInjector(Simulator& sim, Network& net, FaultPlan plan,
                Hooks hooks = {});

  /// Schedules all plan events. Call once, before the run starts.
  void arm();

  const FaultPlan& plan() const noexcept { return plan_; }
  int events_armed() const noexcept { return events_armed_; }

 private:
  Simulator& sim_;
  Network& net_;
  FaultPlan plan_;
  Hooks hooks_;
  int events_armed_ = 0;
  bool armed_ = false;
};


void Simulator::schedule_at(SimTime t, Action action) {
  if (t < now_) {
    throw std::invalid_argument("Simulator: cannot schedule in the past");
  }
  if (!action) {
    throw std::invalid_argument("Simulator: null action");
  }
  queue_.push({t, next_seq_++, std::move(action)});
}

void Simulator::schedule_in(SimTime delay, Action action) {
  schedule_at(now_ + delay, std::move(action));
}

void Simulator::run_until(SimTime end_time) {
  while (!queue_.empty() && queue_.top().time <= end_time) {
    if (event_limit_ != 0 && processed_ >= event_limit_) {
      limit_hit_ = true;
      break;
    }
    // priority_queue::top returns const&; the action must be moved out
    // before pop, so copy the header and move via const_cast-free path:
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++processed_;
    ev.action();
  }
  if (now_ < end_time) now_ = end_time;
}

void Simulator::trace(const std::string& line) {
  if (!tracing_) return;
  char stamp[32];
  std::snprintf(stamp, sizeof stamp, "[%9.3f] ", now_);
  trace_.push_back(stamp + line);
}

Network::Network(Simulator& sim, std::vector<int> nodes_per_site,
                 NetworkOptions options)
    : sim_(sim), nodes_per_site_(std::move(nodes_per_site)), options_(options),
      impairment_rng_(options.impairment_seed, "network-impairment") {
  if (options_.loss_probability < 0.0 || options_.loss_probability >= 1.0) {
    throw std::invalid_argument("Network: loss probability must be in [0, 1)");
  }
  if (options_.latency_jitter_s < 0.0) {
    throw std::invalid_argument("Network: negative jitter");
  }
  if (options_.duplicate_probability < 0.0 ||
      options_.duplicate_probability >= 1.0) {
    throw std::invalid_argument(
        "Network: duplicate probability must be in [0, 1)");
  }
  if (options_.reorder_probability < 0.0 ||
      options_.reorder_probability >= 1.0 || options_.reorder_window_s < 0.0) {
    throw std::invalid_argument("Network: bad reordering parameters");
  }
  if (options_.control_loss_probability < 0.0 ||
      options_.control_loss_probability > 1.0) {
    throw std::invalid_argument(
        "Network: control loss probability must be in [0, 1]");
  }
  if (nodes_per_site_.empty()) {
    throw std::invalid_argument("Network: need at least one site");
  }
  std::size_t total = 0;
  for (const int n : nodes_per_site_) {
    if (n < 0) throw std::invalid_argument("Network: negative node count");
    offsets_.push_back(total);
    total += static_cast<std::size_t>(n);
  }
  handlers_.resize(total);
  down_.assign(nodes_per_site_.size(), false);
  isolated_.assign(nodes_per_site_.size(), false);
  crashed_.assign(total, false);
  link_down_.assign(nodes_per_site_.size() * nodes_per_site_.size(), false);
}

void Network::check_addr(NodeAddr a) const {
  if (a.site < 0 || a.site >= site_count() || a.node < 0 ||
      a.node >= nodes_at(a.site)) {
    throw std::out_of_range("Network: bad address " + to_string(a));
  }
}

std::size_t Network::flat_index(NodeAddr a) const {
  check_addr(a);
  return offsets_[static_cast<std::size_t>(a.site)] +
         static_cast<std::size_t>(a.node);
}

void Network::register_handler(NodeAddr addr, Handler handler) {
  handlers_[flat_index(addr)] = std::move(handler);
}

void Network::set_site_down(int site, bool down) {
  down_.at(static_cast<std::size_t>(site)) = down;
}

void Network::set_site_isolated(int site, bool isolated) {
  isolated_.at(static_cast<std::size_t>(site)) = isolated;
}

bool Network::site_down(int site) const {
  return down_.at(static_cast<std::size_t>(site));
}

bool Network::site_isolated(int site) const {
  return isolated_.at(static_cast<std::size_t>(site));
}

void Network::set_node_crashed(NodeAddr addr, bool crashed) {
  crashed_[flat_index(addr)] = crashed;
}

bool Network::node_crashed(NodeAddr addr) const {
  return crashed_[flat_index(addr)];
}

void Network::set_link_down(int site_a, int site_b, bool down) {
  if (site_a < 0 || site_a >= site_count() || site_b < 0 ||
      site_b >= site_count()) {
    throw std::out_of_range("Network: bad link site index");
  }
  const auto n = static_cast<std::size_t>(site_count());
  link_down_[static_cast<std::size_t>(site_a) * n +
             static_cast<std::size_t>(site_b)] = down;
  link_down_[static_cast<std::size_t>(site_b) * n +
             static_cast<std::size_t>(site_a)] = down;
}

bool Network::link_down(int site_a, int site_b) const {
  if (site_a < 0 || site_a >= site_count() || site_b < 0 ||
      site_b >= site_count()) {
    throw std::out_of_range("Network: bad link site index");
  }
  return link_down_[static_cast<std::size_t>(site_a) *
                        static_cast<std::size_t>(site_count()) +
                    static_cast<std::size_t>(site_b)];
}

[[maybe_unused]] bool Network::can_communicate(NodeAddr from, NodeAddr to) const {
  check_addr(from);
  check_addr(to);
  if (node_crashed(from) || node_crashed(to)) return false;
  if (site_down(from.site) || site_down(to.site)) return false;
  if (from.site != to.site &&
      (site_isolated(from.site) || site_isolated(to.site))) {
    return false;
  }
  if (from.site != to.site && link_down(from.site, to.site)) return false;
  return true;
}

void Network::deliver(NodeAddr to, const Message& msg, double latency) {
  sim_.schedule_in(latency, [this, to, msg] {
    // Re-check destination health at delivery time: packets in flight to a
    // site that just flooded, got cut off, or whose node crashed are lost.
    if (site_down(to.site) || node_crashed(to)) {
      ++drops_.in_flight;
      return;
    }
    if (msg.sender.site != to.site &&
        (site_isolated(to.site) || site_isolated(msg.sender.site) ||
         link_down(msg.sender.site, to.site))) {
      ++drops_.in_flight;
      return;
    }
    const Handler& h = handlers_[flat_index(to)];
    if (h) {
      ++delivered_;
      h(msg);
    }
  });
}

void Network::send(NodeAddr from, NodeAddr to, Message msg) {
  ++sent_;
  check_addr(from);
  check_addr(to);
  // Classify send-time blocks by cause (first matching cause wins).
  if (node_crashed(from) || node_crashed(to)) {
    ++drops_.crashed;
    return;
  }
  if (site_down(from.site) || site_down(to.site)) {
    ++drops_.site_down;
    return;
  }
  if (from.site != to.site &&
      (site_isolated(from.site) || site_isolated(to.site))) {
    ++drops_.isolation;
    return;
  }
  if (from.site != to.site && link_down(from.site, to.site)) {
    ++drops_.link_down;
    return;
  }
  if (options_.loss_probability > 0.0 &&
      impairment_rng_.bernoulli(options_.loss_probability)) {
    ++drops_.loss;
    return;
  }
  if (options_.control_loss_probability > 0.0 && is_control_message(msg.type) &&
      impairment_rng_.bernoulli(options_.control_loss_probability)) {
    ++drops_.transfer_loss;
    return;
  }
  msg.sender = from;
  const auto draw_latency = [&] {
    double latency = from.site == to.site ? options_.intra_site_latency_s
                                          : options_.inter_site_latency_s;
    if (options_.latency_jitter_s > 0.0) {
      latency += impairment_rng_.uniform(0.0, options_.latency_jitter_s);
    }
    if (options_.reorder_probability > 0.0 &&
        impairment_rng_.bernoulli(options_.reorder_probability)) {
      // Holding a message back lets traffic sent later overtake it.
      latency += impairment_rng_.uniform(0.0, options_.reorder_window_s);
    }
    return latency;
  };
  deliver(to, msg, draw_latency());
  if (options_.duplicate_probability > 0.0 &&
      impairment_rng_.bernoulli(options_.duplicate_probability)) {
    ++duplicated_;
    deliver(to, msg, draw_latency());
  }
}

[[maybe_unused]] void Network::broadcast(NodeAddr from, Message msg) {
  for (int s = 0; s < site_count(); ++s) {
    for (int n = 0; n < nodes_at(s); ++n) {
      const NodeAddr to{s, n};
      if (to == from) continue;
      send(from, to, msg);
    }
  }
}

void Network::send_to_site(NodeAddr from, int site, Message msg) {
  for (int n = 0; n < nodes_at(site); ++n) {
    const NodeAddr to{site, n};
    if (to == from) continue;
    send(from, to, msg);
  }
}

StateTransferClient::StateTransferClient(Simulator& sim,
                                         StateTransferOptions options,
                                         int matching_needed,
                                         Callbacks callbacks)
    : sim_(sim),
      options_(options),
      matching_needed_(std::max(1, matching_needed)),
      callbacks_(std::move(callbacks)) {}

void StateTransferClient::begin() {
  ++epoch_;
  in_progress_ = true;
  round_ = 1;
  started_at_ = sim_.now();
  replies_.clear();
  send_round();
}

void StateTransferClient::abort() {
  if (!in_progress_) return;
  in_progress_ = false;
  // Bumping the epoch invalidates in-flight replies and pending timeouts.
  ++epoch_;
  replies_.clear();
}

void StateTransferClient::send_round() {
  callbacks_.send_request(epoch_);
  const std::int64_t epoch = epoch_;
  const int round = round_;
  sim_.schedule_in(options_.round_timeout_s,
                   [this, epoch, round] { round_timed_out(epoch, round); });
}

void StateTransferClient::round_timed_out(std::int64_t epoch, int round) {
  if (!in_progress_ || epoch != epoch_ || round != round_) return;
  if (round_ >= options_.max_rounds) {
    in_progress_ = false;
    ++failed_;
    replies_.clear();
    callbacks_.fail(round_);
    return;
  }
  ++retry_rounds_;
  const double wait = options_.backoff.delay(round_ - 1);
  ++round_;
  const std::int64_t cur_epoch = epoch_;
  const int cur_round = round_;
  sim_.schedule_in(wait, [this, cur_epoch, cur_round] {
    if (!in_progress_ || cur_epoch != epoch_ || cur_round != round_) return;
    send_round();
  });
}

void StateTransferClient::on_reply(const Message& msg) {
  if (!in_progress_ || msg.request_id != epoch_) return;
  Reply reply;
  reply.count = msg.seq;
  reply.digest = msg.value;
  reply.ids = msg.payload;
  std::sort(reply.ids.begin(), reply.ids.end());
  replies_[{msg.sender.site, msg.sender.node}] = std::move(reply);
  try_complete();
}

void StateTransferClient::try_complete() {
  // Group replies by certificate (count, digest); install once any
  // certificate has matching_needed distinct voters.
  std::map<std::pair<std::int64_t, std::int64_t>, int> votes;
  for (const auto& [sender, reply] : replies_) {
    (void)sender;
    ++votes[{reply.count, reply.digest}];
  }
  for (const auto& [cert, n] : votes) {
    if (n < matching_needed_) continue;
    Result result;
    result.count = cert.first;
    result.digest = cert.second;
    result.rounds = round_;
    result.elapsed_s = sim_.now() - started_at_;
    // Install only ids vouched for by >= matching_needed of the
    // cert-matching replies, so one stale tail cannot pollute the set.
    std::map<std::int64_t, int> id_votes;
    for (const auto& [sender, reply] : replies_) {
      (void)sender;
      if (reply.count != cert.first || reply.digest != cert.second) continue;
      for (std::int64_t id : reply.ids) ++id_votes[id];
    }
    for (const auto& [id, id_n] : id_votes) {
      if (id_n >= matching_needed_) result.ids.push_back(id);
    }
    in_progress_ = false;
    ++completed_;
    max_catchup_s_ = std::max(max_catchup_s_, result.elapsed_s);
    replies_.clear();
    ++epoch_;  // invalidate any still-pending timeout
    callbacks_.install(result);
    return;
  }
}

InvariantMonitor::InvariantMonitor(Simulator& sim, InvariantOptions options)
    : sim_(sim), options_(options) {}

void InvariantMonitor::record(const std::string& violation) {
  std::ostringstream line;
  line << "t=" << sim_.now() << " " << violation;
  violations_.push_back(line.str());
  sim_.trace("INVARIANT VIOLATION: " + violation);
}

void InvariantMonitor::on_execute(NodeAddr replica, int group,
                                  std::int64_t view, std::int64_t seq,
                                  std::int64_t request_id) {
  const auto key = std::make_tuple(group, view, seq);
  const auto [it, inserted] =
      committed_.try_emplace(key, std::make_pair(request_id, replica));
  if (!inserted && it->second.first != request_id) {
    std::ostringstream what;
    what << "safety-agreement: group " << group << " view " << view << " seq "
         << seq << " executed as request " << it->second.first << " by "
         << to_string(it->second.second) << " but as request " << request_id
         << " by " << to_string(replica);
    record(what.str());
  }
}

void InvariantMonitor::on_compromise(NodeAddr replica) {
  compromised_.insert({replica.site, replica.node});
}

void InvariantMonitor::on_client_accept(std::int64_t request_id,
                                        bool corrupt) {
  if (!corrupt) {
    correct_accepts_.push_back(sim_.now());
    return;
  }
  if (compromised_count() <= options_.f) {
    std::ostringstream what;
    what << "safety-forgery: client accepted forged reply for request "
         << request_id << " with only " << compromised_count()
         << " compromised replicas (f=" << options_.f << ")";
    record(what.str());
  }
}

void InvariantMonitor::on_checkpoint(NodeAddr replica, int group,
                                     std::int64_t count, std::int64_t digest) {
  if (compromised_.contains({replica.site, replica.node})) return;
  checkpoints_[group].insert({count, digest});
}

void InvariantMonitor::on_state_install(NodeAddr replica, int group,
                                        std::int64_t count,
                                        std::int64_t digest) {
  // A trivial install (empty state) is always legitimate: cold groups have
  // no checkpoint history yet.
  if (count == 0) return;
  const auto it = checkpoints_.find(group);
  if (it != checkpoints_.end() && it->second.contains({count, digest})) return;
  std::ostringstream what;
  what << "state-transfer: " << to_string(replica) << " of group " << group
       << " installed state claiming checkpoint (count " << count
       << ", digest " << digest
       << ") that no correct replica ever voted for";
  record(what.str());
}

void InvariantMonitor::declare_outage(double from, double to) {
  if (to <= from) return;
  outages_.emplace_back(from, to);
}

double InvariantMonitor::uncovered_span(double from, double to) const {
  std::vector<std::pair<double, double>> merged = outages_;
  std::sort(merged.begin(), merged.end());
  double longest = 0.0;
  double cursor = from;
  for (const auto& [lo, hi] : merged) {
    if (hi <= cursor) continue;
    if (lo >= to) break;
    if (lo > cursor) longest = std::max(longest, std::min(lo, to) - cursor);
    cursor = std::max(cursor, hi);
    if (cursor >= to) return longest;
  }
  if (cursor < to) longest = std::max(longest, to - cursor);
  return longest;
}

void InvariantMonitor::finalize(double judge_from, double judge_to) {
  if (options_.liveness_gap_s <= 0.0 || judge_to <= judge_from) return;
  // Gap endpoints: the judged-window edges plus every correct completion.
  std::vector<double> points;
  points.push_back(judge_from);
  for (const double t : correct_accepts_) {
    if (t >= judge_from && t <= judge_to) points.push_back(t);
  }
  points.push_back(judge_to);
  std::sort(points.begin(), points.end());
  for (std::size_t i = 1; i < points.size(); ++i) {
    const double lo = points[i - 1];
    const double hi = points[i];
    if (hi - lo <= options_.liveness_gap_s) continue;
    const double unexplained = uncovered_span(lo, hi);
    if (unexplained > options_.liveness_gap_s) {
      std::ostringstream what;
      what << "liveness: " << unexplained
           << " s without a correct completion in [" << lo << ", " << hi
           << ") outside declared outages (bound " << options_.liveness_gap_s
           << " s)";
      record(what.str());
      return;  // one liveness finding per run is enough
    }
  }
}

ClientWorkload::ClientWorkload(Simulator& sim, Network& net, NodeAddr self,
                               WorkloadOptions options)
    : sim_(sim), net_(net), self_(self), options_(options),
      retransmit_rng_(options.retransmit_seed, "workload-retransmit") {
  if (options_.request_interval_s <= 0.0 || options_.replies_needed < 1) {
    throw std::invalid_argument("ClientWorkload: bad options");
  }
  if (options_.retransmit_backoff_multiplier < 1.0 ||
      options_.retransmit_backoff_cap_s <= 0.0 ||
      options_.retransmit_jitter_fraction < 0.0) {
    throw std::invalid_argument("ClientWorkload: bad retransmit backoff");
  }
  net_.register_handler(self_, [this](const Message& m) { on_message(m); });
}

void ClientWorkload::set_targets(std::vector<NodeAddr> targets) {
  targets_ = std::move(targets);
}

void ClientWorkload::start(double start_s, double end_s) {
  end_s_ = end_s;
  sim_.schedule_at(start_s, [this] { issue(); });
}

void ClientWorkload::issue() {
  if (sim_.now() >= end_s_) return;

  Message req;
  req.type = Message::Type::kRequest;
  req.request_id = next_id_++;

  RequestRecord record;
  record.id = req.request_id;
  record.sent_at = sim_.now();
  record_index_[record.id] = records_.size();
  records_.push_back(record);

  for (const NodeAddr target : targets_) net_.send(self_, target, req);
  if (options_.retransmit_limit > 0) {
    schedule_retransmit(req.request_id, options_.retransmit_limit);
  }
  sim_.schedule_in(options_.request_interval_s, [this] { issue(); });
}

void ClientWorkload::on_message(const Message& msg) {
  if (msg.type != Message::Type::kReply) return;
  const auto it = record_index_.find(msg.request_id);
  if (it == record_index_.end()) return;
  RequestRecord& record = records_[it->second];
  if (record.completed_at >= 0.0) return;  // already accepted

  auto& sigs = pending_replies_[msg.request_id];
  auto& voters = sigs[{msg.value, msg.corrupt}];
  voters.insert({msg.sender.site, msg.sender.node});
  if (static_cast<int>(voters.size()) < options_.replies_needed) return;

  record.completed_at = sim_.now();
  record.corrupt = msg.corrupt;
  if (monitor_ != nullptr) {
    monitor_->on_client_accept(msg.request_id, msg.corrupt);
  }
  if (msg.corrupt && !safety_violated_) {
    safety_violated_ = true;
    first_violation_at_ = sim_.now();
    sim_.trace("client ACCEPTED CORRUPT result for request " +
               std::to_string(msg.request_id));
  }
  pending_replies_.erase(msg.request_id);
}

double ClientWorkload::success_fraction(double from, double to) const {
  std::size_t issued = 0;
  std::size_t succeeded = 0;
  for (const RequestRecord& r : records_) {
    if (r.sent_at < from || r.sent_at > to) continue;
    ++issued;
    if (r.completed_at >= 0.0 && !r.corrupt &&
        r.completed_at - r.sent_at <= options_.request_timeout_s) {
      ++succeeded;
    }
  }
  if (issued == 0) return 0.0;
  return static_cast<double>(succeeded) / static_cast<double>(issued);
}

void ClientWorkload::schedule_retransmit(std::int64_t request_id,
                                         int remaining) {
  // Capped exponential backoff from the base timeout, with seeded jitter:
  // attempt 0 waits ~timeout, each further attempt doubles (by default).
  const BackoffPolicy backoff{options_.request_timeout_s,
                              options_.retransmit_backoff_multiplier,
                              options_.retransmit_backoff_cap_s,
                              options_.retransmit_jitter_fraction};
  const int attempt = options_.retransmit_limit - remaining;
  const double wait = backoff.delay(attempt, &retransmit_rng_);
  sim_.schedule_in(wait, [this, request_id, remaining] {
    const auto it = record_index_.find(request_id);
    if (it == record_index_.end()) return;
    if (records_[it->second].completed_at >= 0.0) return;  // done
    Message req;
    req.type = Message::Type::kRequest;
    req.request_id = request_id;
    for (const NodeAddr target : targets_) net_.send(self_, target, req);
    if (remaining > 1) schedule_retransmit(request_id, remaining - 1);
  });
}

std::vector<double> ClientWorkload::availability_series(double bucket_s,
                                                        double from,
                                                        double to) const {
  std::vector<double> out;
  if (bucket_s <= 0.0 || to <= from) return out;
  for (double t = from; t < to; t += bucket_s) {
    const double hi = std::min(to, t + bucket_s);
    std::size_t issued = 0;
    std::size_t succeeded = 0;
    for (const RequestRecord& r : records_) {
      if (r.sent_at < t || r.sent_at >= hi) continue;
      ++issued;
      if (r.completed_at >= 0.0 && !r.corrupt &&
          r.completed_at - r.sent_at <= options_.request_timeout_s) {
        ++succeeded;
      }
    }
    out.push_back(issued == 0
                      ? -1.0
                      : static_cast<double>(succeeded) /
                            static_cast<double>(issued));
  }
  return out;
}

double ClientWorkload::max_gap(double from, double to) const {
  std::vector<double> successes;
  for (const RequestRecord& r : records_) {
    if (r.completed_at >= from && r.completed_at <= to && !r.corrupt) {
      successes.push_back(r.completed_at);
    }
  }
  std::sort(successes.begin(), successes.end());
  double gap = 0.0;
  double prev = from;
  for (const double t : successes) {
    gap = std::max(gap, t - prev);
    prev = t;
  }
  gap = std::max(gap, to - prev);
  return gap;
}

PbReplica::PbReplica(Simulator& sim, Network& net, NodeAddr self,
                     PbOptions options, bool site_initially_active)
    : sim_(sim), net_(net), self_(self), options_(options),
      active_(site_initially_active),
      primary_(site_initially_active && self.node == 0) {
  // One matching peer suffices: primary-backup has no Byzantine quorum —
  // whichever site peer answers first is the surviving log.
  sync_ = std::make_unique<StateTransferClient>(
      sim_, options_.sync, 1,
      StateTransferClient::Callbacks{
          [this](std::int64_t epoch) {
            Message req;
            req.type = Message::Type::kStateRequest;
            req.request_id = epoch;
            req.seq = static_cast<std::int64_t>(executed_.size());
            net_.send_to_site(self_, self_.site, req);
          },
          [this](const StateTransferClient::Result& r) {
            executed_.insert(r.ids.begin(), r.ids.end());
            syncing_ = false;
            sim_.trace(to_string(self_) + " synced executed log (" +
                       std::to_string(r.ids.size()) + " ids)");
          },
          [this](int rounds) {
            // Fail-open: availability beats consistency for this stack.
            syncing_ = false;
            sim_.trace(to_string(self_) + " log sync failed after " +
                       std::to_string(rounds) +
                       " rounds; serving from local log (fail-open)");
          }});
  net_.register_handler(self_, [this](const Message& m) { on_message(m); });
}

void PbReplica::start() {
  last_heartbeat_ = sim_.now();
  heartbeat_loop();
  watchdog_loop();
}

void PbReplica::set_compromised(bool compromised) noexcept {
  if (compromised && !compromised_ && monitor_ != nullptr) {
    monitor_->on_compromise(self_);
  }
  compromised_ = compromised;
}

void PbReplica::become_primary() {
  if (primary_) return;
  primary_ = true;
  sim_.trace(to_string(self_) + " promoted to primary");
  start_sync("promotion");
}

void PbReplica::start_sync(const char* reason) {
  if (!active_ || compromised_) return;
  syncing_ = true;
  sim_.trace(to_string(self_) + " executed-log sync begins (" +
             std::string(reason) + ")");
  sync_->begin();
}

void PbReplica::on_restart() {
  if (!active_ || !primary_ || compromised_) return;
  start_sync("restart");
}

RejoinStats PbReplica::rejoin_stats() const {
  RejoinStats s;
  s.rejoins = sync_->transfers_completed();
  s.failures = sync_->transfers_failed();
  s.retry_rounds = sync_->retry_rounds();
  s.max_catchup_s = sync_->max_catchup_s();
  return s;
}

void PbReplica::on_message(const Message& msg) {
  switch (msg.type) {
    case Message::Type::kRequest: {
      // A compromised SM is attacker-controlled: it forges results whether
      // or not it is the official primary (the client cannot tell).
      if (compromised_) {
        Message reply;
        reply.type = Message::Type::kReply;
        reply.request_id = msg.request_id;
        reply.value = -msg.request_id;  // forged result
        reply.corrupt = true;
        net_.send(self_, msg.sender, reply);
        return;
      }
      if (active_ && primary_ && !syncing_) {
        executed_.insert(msg.request_id);
        Message reply;
        reply.type = Message::Type::kReply;
        reply.request_id = msg.request_id;
        reply.value = msg.request_id;  // correct execution echoes the id
        net_.send(self_, msg.sender, reply);
      }
      return;
    }
    case Message::Type::kHeartbeat: {
      if (msg.sender.site == self_.site) last_heartbeat_ = sim_.now();
      return;
    }
    case Message::Type::kActivate: {
      // Ack unconditionally (idempotent) so the controller's retransmit
      // loop stops even when activation is already pending or complete.
      Message ack;
      ack.type = Message::Type::kActivateAck;
      ack.request_id = msg.request_id;
      net_.send(self_, msg.sender, ack);
      if (active_ || activation_pending_) return;
      activation_pending_ = true;
      sim_.trace(to_string(self_) + " cold site activation started");
      sim_.schedule_in(options_.activation_delay_s, [this] {
        active_ = true;
        activation_pending_ = false;
        last_heartbeat_ = sim_.now();
        // become_primary syncs the executed log before the new site serves.
        if (self_.node == 0) become_primary();
        sim_.trace(to_string(self_) + " cold site activation complete");
      });
      return;
    }
    case Message::Type::kStateRequest: {
      if (!active_ || compromised_) return;
      Message reply;
      reply.type = Message::Type::kStateReply;
      reply.request_id = msg.request_id;  // echo the sync epoch
      reply.seq = static_cast<std::int64_t>(executed_.size());
      reply.payload.assign(executed_.begin(), executed_.end());
      reply.value = state_digest(reply.payload);
      net_.send(self_, msg.sender, reply);
      return;
    }
    case Message::Type::kStateReply: {
      sync_->on_reply(msg);
      return;
    }
    default:
      return;  // BFT-only message types
  }
}

void PbReplica::heartbeat_loop() {
  if (active_ && primary_ && !compromised_) {
    Message hb;
    hb.type = Message::Type::kHeartbeat;
    net_.send_to_site(self_, self_.site, hb);
  }
  sim_.schedule_in(options_.heartbeat_interval_s, [this] { heartbeat_loop(); });
}

void PbReplica::watchdog_loop() {
  if (active_ && !primary_ &&
      sim_.now() - last_heartbeat_ >
          options_.heartbeat_timeout_s * timeout_scale_) {
    become_primary();
  }
  sim_.schedule_in(options_.heartbeat_interval_s, [this] { watchdog_loop(); });
}

FailoverController::FailoverController(Simulator& sim, Network& net,
                                       NodeAddr self,
                                       const ClientWorkload& workload,
                                       int backup_site, PbOptions options)
    : sim_(sim), net_(net), self_(self), workload_(workload),
      backup_site_(backup_site), options_(options) {
  net_.register_handler(self_, [this](const Message& msg) {
    if (msg.type == Message::Type::kActivateAck &&
        msg.sender.site == backup_site_) {
      const bool was_acked = activation_acked();
      acked_nodes_.insert(msg.sender.node);
      if (!was_acked && activation_acked()) {
        sim_.trace("failover controller: backup site " +
                   std::to_string(backup_site_) +
                   " acked activation (all nodes)");
      }
    }
  });
}

bool FailoverController::activation_acked() const noexcept {
  return static_cast<int>(acked_nodes_.size()) >=
         net_.nodes_at(backup_site_);
}

void FailoverController::start(double start_s, double end_s) {
  start_s_ = start_s;
  end_s_ = end_s;
  sim_.schedule_at(start_s + options_.controller_check_interval_s,
                   [this] { check(); });
}

double FailoverController::last_success_time() const {
  double last = start_s_;
  for (const auto& r : workload_.records()) {
    if (r.completed_at >= 0.0 && !r.corrupt) {
      last = std::max(last, r.completed_at);
    }
  }
  return last;
}

void FailoverController::check() {
  if (sim_.now() >= end_s_) return;
  if (activation_attempts_ == 0 &&
      sim_.now() - last_success_time() > options_.controller_outage_threshold_s) {
    sim_.trace("failover controller activating backup site " +
               std::to_string(backup_site_));
    send_activate();
  }
  sim_.schedule_in(options_.controller_check_interval_s, [this] { check(); });
}

void FailoverController::send_activate() {
  // Activation is retransmitted on a capped backoff schedule until every
  // backup-site node acks: a partially delivered broadcast over a lossy
  // WAN can leave the backup group permanently below quorum.
  if (activation_acked() || sim_.now() >= end_s_) return;
  if (options_.activation_max_attempts > 0 &&
      activation_attempts_ >= options_.activation_max_attempts) {
    return;
  }
  ++activation_attempts_;
  Message activate;
  activate.type = Message::Type::kActivate;
  activate.request_id = activation_attempts_;
  net_.send_to_site(self_, backup_site_, activate);
  const double wait =
      options_.activation_retry.delay(activation_attempts_ - 1);
  sim_.schedule_in(wait, [this] { send_activate(); });
}

BftReplica::BftReplica(Simulator& sim, Network& net, NodeAddr self,
                       std::vector<NodeAddr> group, int index,
                       BftOptions options, bool group_initially_active)
    : sim_(sim), net_(net), self_(self), group_(std::move(group)),
      index_(index), options_(options),
      quorum_(scada::bft_quorum(static_cast<int>(group_.size()), options.f)),
      active_(group_initially_active) {
  if (index_ < 0 || static_cast<std::size_t>(index_) >= group_.size() ||
      !(group_[static_cast<std::size_t>(index_)] == self_)) {
    throw std::invalid_argument("BftReplica: index does not match group slot");
  }
  stable_digest_ = state_digest({});
  // Catch-up installs need f+1 matching peers: at most f can lie, so any
  // f+1 matching certificate has a correct voucher.
  transfer_ = std::make_unique<StateTransferClient>(
      sim_, options_.state_transfer, options_.f + 1,
      StateTransferClient::Callbacks{
          [this](std::int64_t epoch) {
            Message req;
            req.type = Message::Type::kStateRequest;
            req.request_id = epoch;
            req.seq = static_cast<std::int64_t>(executed_.size());
            broadcast_to_group(req);
          },
          [this](const StateTransferClient::Result& r) { install_state(r); },
          [this](int rounds) { catchup_failed(rounds); }});
  net_.register_handler(self_, [this](const Message& m) { on_message(m); });
}

void BftReplica::start() {
  last_progress_ = sim_.now();
  watchdog_loop();
}

void BftReplica::set_compromised(bool compromised) noexcept {
  if (compromised && !compromised_ && monitor_ != nullptr) {
    monitor_->on_compromise(self_);
  }
  compromised_ = compromised;
}

bool BftReplica::is_leader() const {
  return static_cast<std::size_t>(view_ % static_cast<std::int64_t>(
             group_.size())) == static_cast<std::size_t>(index_);
}

void BftReplica::broadcast_to_group(const Message& msg) {
  for (const NodeAddr member : group_) {
    if (member == self_) continue;
    net_.send(self_, member, msg);
  }
}

void BftReplica::begin_recovery() {
  recovering_ = true;
  // A rejuvenating replica abandons any in-flight catch-up; end_recovery
  // starts a fresh one with a fresh retry budget.
  transfer_->abort();
  catching_up_ = false;
  // Note: the compromised_ flag is NOT cleared here. The paper's analysis
  // classifies a static post-attack state, so the simulator keeps the
  // attacker's foothold for the whole analysis window; what proactive
  // recovery buys in that model is the "k" slot in n = 3f + 2k + 1
  // (tolerating a recovering replica's absence), per Sousa et al. [23].
  sim_.trace(to_string(self_) + " proactive recovery begins");
}

void BftReplica::end_recovery() {
  recovering_ = false;
  last_progress_ = sim_.now();
  sim_.trace(to_string(self_) + " proactive recovery ends");
  begin_catchup("proactive recovery");
}

void BftReplica::on_restart() {
  if (!active_ || compromised_ || recovering_) return;
  begin_catchup("restart");
}

void BftReplica::begin_catchup(const char* reason) {
  if (!active_ || compromised_) return;
  // A restart gives a previously passive replica a fresh retry budget.
  passive_ = false;
  catching_up_ = true;
  last_progress_ = sim_.now();
  sim_.trace(to_string(self_) + " catch-up transfer begins (" +
             std::string(reason) + ")");
  transfer_->begin();
}

void BftReplica::install_state(const StateTransferClient::Result& result) {
  for (const std::int64_t id : result.ids) {
    if (executed_.contains(id)) continue;
    // The transferred tail carries no client address; the client has long
    // since collected its reply quorum from the peers that executed live.
    executed_[id] = NodeAddr{};
    pending_.erase(id);
    accept_votes_.erase(id);
  }
  if (result.count > stable_count_) {
    stable_count_ = result.count;
    stable_digest_ = result.digest;
    gc_below_stable();
  }
  if (monitor_ != nullptr) {
    monitor_->on_state_install(self_, group_id_, result.count, result.digest);
  }
  catching_up_ = false;
  last_progress_ = sim_.now();
  sim_.trace(to_string(self_) + " installed state (count " +
             std::to_string(result.count) + ", " +
             std::to_string(result.rounds) + " round(s))");
  if (is_leader()) propose_pending();
}

void BftReplica::catchup_failed(int rounds) {
  catching_up_ = false;
  passive_ = true;
  sim_.trace(to_string(self_) + " catch-up failed after " +
             std::to_string(rounds) + " rounds; degrading to passive");
}

RejoinStats BftReplica::rejoin_stats() const {
  RejoinStats s;
  s.rejoins = transfer_->transfers_completed();
  s.failures = transfer_->transfers_failed();
  s.retry_rounds = transfer_->retry_rounds();
  s.max_catchup_s = transfer_->max_catchup_s();
  return s;
}

void BftReplica::on_message(const Message& msg) {
  if (msg.type == Message::Type::kActivate) {
    // Ack unconditionally (idempotent) so the controller's retransmit loop
    // stops even when the first activation is already pending.
    Message ack;
    ack.type = Message::Type::kActivateAck;
    ack.request_id = msg.request_id;
    net_.send(self_, msg.sender, ack);
    if (active_ || activation_pending_) return;
    activation_pending_ = true;
    sim_.schedule_in(options_.activation_delay_s, [this] {
      active_ = true;
      activation_pending_ = false;
      last_progress_ = sim_.now();
      sim_.trace(to_string(self_) + " cold BFT group activated");
      // A freshly activated group member syncs before serving. With every
      // member equally cold the transfer converges on the trivial (empty)
      // certificate; a staggered activation picks up real state.
      begin_catchup("cold activation");
    });
    return;
  }

  // A compromised replica ignores the protocol but races forged replies to
  // the client (worst case permitted by the threat model).
  if (compromised_) {
    if (msg.type == Message::Type::kRequest) {
      Message reply;
      reply.type = Message::Type::kReply;
      reply.request_id = msg.request_id;
      reply.value = -msg.request_id;
      reply.corrupt = true;
      net_.send(self_, msg.sender, reply);
    }
    return;
  }
  if (recovering_ || !active_ || passive_) return;

  // While catching up, the replica answers state requests and overhears
  // the ordering protocol (per-request slots make that safe) but does not
  // serve clients; serving resumes once the transfer installs.
  switch (msg.type) {
    case Message::Type::kStateRequest: return on_state_request(msg);
    case Message::Type::kStateReply: return transfer_->on_reply(msg);
    case Message::Type::kCheckpoint: return on_checkpoint_vote(msg);
    case Message::Type::kRequest:
      if (catching_up_) return;
      return on_request(msg);
    case Message::Type::kProposal: return on_proposal(msg);
    case Message::Type::kAccept: return on_accept(msg);
    case Message::Type::kViewChange: return on_view_change(msg);
    default: return;
  }
}

void BftReplica::on_state_request(const Message& msg) {
  Message reply;
  reply.type = Message::Type::kStateReply;
  reply.request_id = msg.request_id;  // echo the transfer epoch
  reply.seq = stable_count_;
  reply.value = stable_digest_;
  reply.payload = executed_ids();
  net_.send(self_, msg.sender, reply);
}

void BftReplica::on_request(const Message& msg) {
  const auto executed = executed_.find(msg.request_id);
  if (executed != executed_.end()) {
    // Retransmission after execution: reply directly.
    Message reply;
    reply.type = Message::Type::kReply;
    reply.request_id = msg.request_id;
    reply.value = msg.request_id;
    net_.send(self_, msg.sender, reply);
    return;
  }
  pending_[msg.request_id] = msg.sender;
  if (is_leader()) propose_pending();
}

std::vector<std::int64_t> BftReplica::executed_ids() const {
  std::vector<std::int64_t> ids;
  ids.reserve(executed_.size());
  for (const auto& [id, client] : executed_) {
    (void)client;
    ids.push_back(id);  // std::map iteration is already sorted
  }
  return ids;
}

void BftReplica::maybe_broadcast_checkpoint() {
  if (++executions_since_checkpoint_ < options_.checkpoint_interval) return;
  executions_since_checkpoint_ = 0;
  const std::vector<std::int64_t> ids = executed_ids();
  const auto count = static_cast<std::int64_t>(ids.size());
  const std::int64_t digest = state_digest(ids);
  if (monitor_ != nullptr) {
    monitor_->on_checkpoint(self_, group_id_, count, digest);
  }
  Message vote;
  vote.type = Message::Type::kCheckpoint;
  vote.seq = count;
  vote.value = digest;
  broadcast_to_group(vote);
  tally_checkpoint_vote(index_, count, digest);
}

void BftReplica::on_checkpoint_vote(const Message& msg) {
  int voter_index = -1;
  for (std::size_t i = 0; i < group_.size(); ++i) {
    if (group_[i] == msg.sender) {
      voter_index = static_cast<int>(i);
      break;
    }
  }
  if (voter_index < 0) return;  // not a group member
  tally_checkpoint_vote(voter_index, msg.seq, msg.value);
}

void BftReplica::tally_checkpoint_vote(int voter_index, std::int64_t count,
                                       std::int64_t digest) {
  if (count <= stable_count_) return;  // already superseded
  auto& votes = checkpoint_votes_[{count, digest}];
  votes.insert(voter_index);
  // f+1 matching votes cannot all come from faulty replicas, so the
  // certificate is vouched for by at least one correct execution history.
  if (static_cast<int>(votes.size()) < options_.f + 1) return;
  stable_count_ = count;
  stable_digest_ = digest;
  ++checkpoints_formed_;
  gc_below_stable();
  sim_.trace(to_string(self_) + " stable checkpoint at count " +
             std::to_string(count));
}

void BftReplica::gc_below_stable() {
  // Ordering state for executed requests is redundant once a checkpoint
  // covering them is stable: a re-proposal of a reclaimed id simply
  // re-votes (execution stays idempotent), so dropping the dedup sets is
  // safe and keeps per-request state bounded by the checkpoint interval.
  std::erase_if(checkpoint_votes_, [this](const auto& entry) {
    return entry.first.first <= stable_count_;
  });
  for (const auto& [id, client] : executed_) {
    (void)client;
    voted_.erase(id);
    announced_view_.erase(id);
  }
}

void BftReplica::propose_pending() {
  if (!active_ || recovering_ || catching_up_ || passive_) return;
  // Snapshot: voting for our own proposal below can complete a quorum and
  // execute the request, which erases it from pending_ — iterating the
  // live map would be invalidated mid-loop.
  std::vector<std::int64_t> pending_ids;
  pending_ids.reserve(pending_.size());
  for (const auto& [request_id, client] : pending_) {
    pending_ids.push_back(request_id);
  }
  for (const std::int64_t request_id : pending_ids) {
    if (!pending_.contains(request_id)) continue;  // executed meanwhile
    if (proposed_this_view_.contains(request_id)) continue;
    proposed_this_view_.insert(request_id);
    Message proposal;
    proposal.type = Message::Type::kProposal;
    proposal.view = view_;
    proposal.seq = next_seq_++;
    proposal.request_id = request_id;
    broadcast_to_group(proposal);
    // The leader votes for its own proposal.
    Message own_accept = proposal;
    own_accept.type = Message::Type::kAccept;
    own_accept.sender = self_;
    on_accept(own_accept);
    broadcast_to_group(own_accept);
  }
}

void BftReplica::on_proposal(const Message& msg) {
  const NodeAddr expected_leader = group_[static_cast<std::size_t>(
      msg.view % static_cast<std::int64_t>(group_.size()))];
  if (!(msg.sender == expected_leader)) return;  // not from that view's leader
  if (msg.view < view_) return;                  // stale view
  if (voted_.contains(msg.request_id)) {
    // Re-proposal after a view change: re-announce the vote so the new
    // leader's quorum can form — at most once per (request, view), or a
    // lossy network can whip re-proposals into a broadcast storm.
    const auto announced = announced_view_.find(msg.request_id);
    if (announced != announced_view_.end() && announced->second >= msg.view) {
      return;
    }
    announced_view_[msg.request_id] = msg.view;
    Message accept = msg;
    accept.type = Message::Type::kAccept;
    broadcast_to_group(accept);
    return;
  }
  voted_.insert(msg.request_id);
  Message accept = msg;
  accept.type = Message::Type::kAccept;
  // Vote for it ourselves, then tell the group.
  Message own = accept;
  own.sender = self_;
  on_accept(own);
  broadcast_to_group(accept);
}

void BftReplica::on_accept(const Message& msg) {
  if (executed_.contains(msg.request_id)) return;
  const NodeAddr voter = msg.sender;
  int voter_index = -1;
  for (std::size_t i = 0; i < group_.size(); ++i) {
    if (group_[i] == voter) {
      voter_index = static_cast<int>(i);
      break;
    }
  }
  if (voter_index < 0) return;  // not a group member
  auto& votes = accept_votes_[msg.request_id];
  votes.insert(voter_index);
  if (static_cast<int>(votes.size()) >= quorum_) {
    execute(msg.request_id, msg.view, msg.seq);
  }
}

void BftReplica::execute(std::int64_t request_id, std::int64_t view,
                         std::int64_t seq) {
  const auto pending = pending_.find(request_id);
  NodeAddr client{};
  bool have_client = false;
  if (pending != pending_.end()) {
    client = pending->second;
    have_client = true;
    pending_.erase(pending);
  }
  executed_[request_id] = client;
  accept_votes_.erase(request_id);
  last_progress_ = sim_.now();
  if (monitor_ != nullptr && !compromised_) {
    monitor_->on_execute(self_, group_id_, view, seq, request_id);
  }
  if (have_client) {
    Message reply;
    reply.type = Message::Type::kReply;
    reply.request_id = request_id;
    reply.value = request_id;
    net_.send(self_, client, reply);
  }
  maybe_broadcast_checkpoint();
}

void BftReplica::on_view_change(const Message& msg) {
  if (msg.view <= view_) return;
  auto& votes = view_votes_[msg.view];
  int voter_index = -1;
  for (std::size_t i = 0; i < group_.size(); ++i) {
    if (group_[i] == msg.sender) {
      voter_index = static_cast<int>(i);
      break;
    }
  }
  if (voter_index < 0) return;
  votes.insert(voter_index);
  // Join a higher view once f+1 members vouch for it (they cannot all be
  // faulty), without waiting for our own timeout.
  if (static_cast<int>(votes.size()) >= options_.f + 1) {
    view_ = msg.view;
    last_progress_ = sim_.now();
    view_votes_.erase(view_votes_.begin(), view_votes_.upper_bound(view_));
    proposed_this_view_.clear();
    if (is_leader()) propose_pending();
  }
}

void BftReplica::watchdog_loop() {
  if (active_ && !recovering_ && !compromised_ && !catching_up_ &&
      !passive_ && !pending_.empty() &&
      sim_.now() - last_progress_ > options_.view_timeout_s * timeout_scale_) {
    ++view_;
    last_progress_ = sim_.now();
    proposed_this_view_.clear();
    sim_.trace(to_string(self_) + " view change to " + std::to_string(view_));
    Message vc;
    vc.type = Message::Type::kViewChange;
    vc.view = view_;
    broadcast_to_group(vc);
    if (is_leader()) propose_pending();
  }
  sim_.schedule_in(1.0, [this] { watchdog_loop(); });
}

RecoveryScheduler::RecoveryScheduler(Simulator& sim,
                                     std::vector<BftReplica*> replicas,
                                     BftOptions options)
    : sim_(sim), replicas_(std::move(replicas)), options_(options) {
  for (BftReplica* r : replicas_) {
    if (r == nullptr) {
      throw std::invalid_argument("RecoveryScheduler: null replica");
    }
  }
}

void RecoveryScheduler::start(double start_s) {
  if (replicas_.empty() || options_.k <= 0) return;
  sim_.schedule_at(start_s, [this] { rotate(); });
}

void RecoveryScheduler::rotate() {
  BftReplica* replica = replicas_[next_];
  next_ = (next_ + 1) % replicas_.size();
  replica->begin_recovery();
  sim_.schedule_in(options_.recovery_duration_s,
                   [replica] { replica->end_recovery(); });
  sim_.schedule_in(options_.recovery_period_s, [this] { rotate(); });
}

FaultInjector::FaultInjector(Simulator& sim, Network& net, FaultPlan plan,
                             Hooks hooks)
    : sim_(sim), net_(net), plan_(std::move(plan)), hooks_(std::move(hooks)) {}

void FaultInjector::arm() {
  if (armed_) throw std::logic_error("FaultInjector: already armed");
  armed_ = true;
  for (const FaultEvent& e : plan_.events) {
    ++events_armed_;
    switch (e.kind) {
      case FaultKind::kCrash: {
        const NodeAddr node = e.node;
        sim_.schedule_at(e.at, [this, node] {
          net_.set_node_crashed(node, true);
          sim_.trace(to_string(node) + " CRASHED (fault plan)");
        });
        if (e.duration > 0.0) {
          sim_.schedule_at(e.at + e.duration, [this, node] {
            net_.set_node_crashed(node, false);
            sim_.trace(to_string(node) + " restarted (fault plan)");
            if (hooks_.restart) hooks_.restart(node);
          });
        }
        break;
      }
      case FaultKind::kLinkFlap: {
        const int a = e.site_a;
        const int b = e.site_b;
        sim_.schedule_at(e.at, [this, a, b] {
          net_.set_link_down(a, b, true);
          sim_.trace("link " + std::to_string(a) + "-" + std::to_string(b) +
                     " DOWN (fault plan)");
        });
        if (e.duration > 0.0) {
          sim_.schedule_at(e.at + e.duration, [this, a, b] {
            net_.set_link_down(a, b, false);
            sim_.trace("link " + std::to_string(a) + "-" + std::to_string(b) +
                       " restored (fault plan)");
          });
        }
        break;
      }
      case FaultKind::kSiteFlap: {
        const int site = e.site_a;
        // Restore to the pre-flap state so a flap scheduled against a site
        // that is already flooded does not resurrect it.
        sim_.schedule_at(e.at, [this, site, duration = e.duration] {
          const bool was_down = net_.site_down(site);
          net_.set_site_down(site, true);
          sim_.trace("site " + std::to_string(site) + " FLAPPED down");
          if (duration > 0.0) {
            sim_.schedule_in(duration, [this, site, was_down] {
              net_.set_site_down(site, was_down);
              sim_.trace("site " + std::to_string(site) + " flap over");
              // Every node of a bounced site restarts (unless the site was
              // already flooded and the flap changed nothing).
              if (!was_down && hooks_.restart) {
                for (int n = 0; n < net_.nodes_at(site); ++n) {
                  hooks_.restart({site, n});
                }
              }
            });
          }
        });
        break;
      }
      case FaultKind::kSkew: {
        if (!hooks_.set_timeout_scale) break;
        const NodeAddr node = e.node;
        const double factor = e.factor;
        sim_.schedule_at(e.at, [this, node, factor] {
          hooks_.set_timeout_scale(node, factor);
          sim_.trace(to_string(node) + " timeout skew x" +
                     std::to_string(factor));
        });
        if (e.duration > 0.0) {
          sim_.schedule_at(e.at + e.duration, [this, node] {
            hooks_.set_timeout_scale(node, 1.0);
          });
        }
        break;
      }
      case FaultKind::kCompromise: {
        if (!hooks_.compromise) break;
        const NodeAddr node = e.node;
        sim_.schedule_at(e.at, [this, node] {
          hooks_.compromise(node);
          sim_.trace(to_string(node) + " COMPROMISED (fault plan)");
        });
        break;
      }
    }
  }
}

}  // namespace

DesOutcome run_reference_des(const scada::Configuration& config,
                             const DesOptions& options,
                             const threat::SystemState& attacked_state,
                             const FaultPlan* plan) {
  const std::size_t n_sites = config.sites.size();
  if (attacked_state.site_status.size() != n_sites ||
      attacked_state.intrusions.size() != n_sites) {
    throw std::invalid_argument("ScadaDes: state size mismatch");
  }

  Simulator sim;
  sim.set_tracing(options.tracing);
  sim.set_event_limit(options.event_limit);

  // Network: one site per control site plus the client (field) site.
  std::vector<int> nodes_per_site;
  for (const scada::ControlSite& site : config.sites) {
    nodes_per_site.push_back(site.replicas);
  }
  const int client_site = static_cast<int>(n_sites);
  nodes_per_site.push_back(2);  // client + failover controller
  NetworkOptions net_options = options.net;
  if (plan != nullptr) {
    // The plan's message impairments are layered on top of the base WAN.
    net_options.duplicate_probability =
        std::max(net_options.duplicate_probability,
                 plan->duplicate_probability);
    net_options.reorder_probability =
        std::max(net_options.reorder_probability, plan->reorder_probability);
    net_options.reorder_window_s =
        std::max(net_options.reorder_window_s, plan->reorder_window_s);
    net_options.control_loss_probability =
        std::max(net_options.control_loss_probability,
                 plan->transfer_loss_probability);
  }
  Network net(sim, nodes_per_site, net_options);

  // Invariant monitor: safety is always watched; liveness when enabled.
  InvariantOptions inv_options;
  inv_options.f = config.style == scada::ReplicationStyle::kIntrusionTolerant
                      ? config.intrusion_tolerance_f
                      : 0;
  inv_options.liveness_gap_s = options.liveness_gap_s;
  InvariantMonitor monitor(sim, inv_options);

  // Client workload.
  const bool bft = config.style == scada::ReplicationStyle::kIntrusionTolerant;
  WorkloadOptions wopts;
  wopts.request_interval_s = options.request_interval_s;
  wopts.request_timeout_s = options.request_timeout_s;
  wopts.replies_needed = bft ? config.intrusion_tolerance_f + 1 : 1;
  wopts.retransmit_limit = options.request_retransmit_limit;
  wopts.retransmit_seed = options.net.impairment_seed;
  ClientWorkload client(sim, net, {client_site, 0}, wopts);
  client.set_monitor(&monitor);
  std::vector<NodeAddr> targets;
  for (std::size_t s = 0; s < n_sites; ++s) {
    for (int node = 0; node < config.sites[s].replicas; ++node) {
      targets.push_back({static_cast<int>(s), node});
    }
  }
  client.set_targets(std::move(targets));

  // Replicas.
  std::vector<std::unique_ptr<PbReplica>> pb_replicas;
  std::vector<std::unique_ptr<BftReplica>> bft_replicas;
  std::vector<std::unique_ptr<RecoveryScheduler>> schedulers;
  // Indexed [site][node] for compromise targeting.
  std::vector<std::vector<PbReplica*>> pb_by_site(n_sites);
  std::vector<std::vector<BftReplica*>> bft_by_site(n_sites);

  BftOptions group_opts = options.bft;
  group_opts.f = config.intrusion_tolerance_f;
  group_opts.k = config.proactive_recovery_k;

  int next_group_id = 0;
  const auto make_bft_group = [&](const std::vector<int>& sites,
                                  bool initially_active) {
    std::vector<int> counts;
    for (const int s : sites) {
      counts.push_back(config.sites[static_cast<std::size_t>(s)].replicas);
    }
    const std::vector<NodeAddr> group = interleaved_group(sites, counts);
    std::vector<BftReplica*> members;
    const int group_id = next_group_id++;
    for (std::size_t i = 0; i < group.size(); ++i) {
      auto replica = std::make_unique<BftReplica>(
          sim, net, group[i], group, static_cast<int>(i), group_opts,
          initially_active);
      replica->set_monitor(&monitor, group_id);
      members.push_back(replica.get());
      bft_by_site[static_cast<std::size_t>(group[i].site)].push_back(
          replica.get());
      bft_replicas.push_back(std::move(replica));
    }
    // One proactive-recovery rotation per group (k = 1).
    if (config.proactive_recovery_k > 0) {
      schedulers.push_back(
          std::make_unique<RecoveryScheduler>(sim, members, group_opts));
    }
  };

  if (bft) {
    if (config.active_multisite) {
      std::vector<int> hot_sites;
      for (std::size_t s = 0; s < n_sites; ++s) {
        if (config.sites[s].hot) hot_sites.push_back(static_cast<int>(s));
      }
      make_bft_group(hot_sites, true);
    } else {
      for (std::size_t s = 0; s < n_sites; ++s) {
        make_bft_group({static_cast<int>(s)}, config.sites[s].hot);
      }
    }
  } else {
    for (std::size_t s = 0; s < n_sites; ++s) {
      for (int node = 0; node < config.sites[s].replicas; ++node) {
        auto replica = std::make_unique<PbReplica>(
            sim, net, NodeAddr{static_cast<int>(s), node}, options.pb,
            config.sites[s].hot);
        replica->set_monitor(&monitor);
        pb_by_site[s].push_back(replica.get());
        pb_replicas.push_back(std::move(replica));
      }
    }
  }

  // Failover controller when the configuration has a cold backup site.
  std::unique_ptr<FailoverController> controller;
  for (std::size_t s = 0; s < n_sites; ++s) {
    if (!config.sites[s].hot) {
      controller = std::make_unique<FailoverController>(
          sim, net, NodeAddr{client_site, 1}, client, static_cast<int>(s),
          options.pb);
      break;
    }
  }

  // Fault plan: map skew/compromise hooks onto the replica objects and arm
  // every scheduled event.
  std::unique_ptr<FaultInjector> injector;
  if (plan != nullptr) {
    const auto for_replica = [&, bft](NodeAddr addr, auto&& pb_fn,
                                      auto&& bft_fn) {
      if (addr.site < 0 || static_cast<std::size_t>(addr.site) >= n_sites) {
        return;  // client site and out-of-range targets are not replicas
      }
      const auto site = static_cast<std::size_t>(addr.site);
      const auto node = static_cast<std::size_t>(addr.node);
      if (bft) {
        if (node < bft_by_site[site].size()) bft_fn(bft_by_site[site][node]);
      } else {
        if (node < pb_by_site[site].size()) pb_fn(pb_by_site[site][node]);
      }
    };
    FaultInjector::Hooks hooks;
    hooks.set_timeout_scale = [for_replica](NodeAddr addr, double scale) {
      for_replica(
          addr, [scale](PbReplica* r) { r->set_timeout_scale(scale); },
          [scale](BftReplica* r) { r->set_timeout_scale(scale); });
    };
    hooks.compromise = [for_replica](NodeAddr addr) {
      for_replica(
          addr, [](PbReplica* r) { r->set_compromised(true); },
          [](BftReplica* r) { r->set_compromised(true); });
    };
    hooks.restart = [for_replica](NodeAddr addr) {
      for_replica(
          addr, [](PbReplica* r) { r->on_restart(); },
          [](BftReplica* r) { r->on_restart(); });
    };
    injector = std::make_unique<FaultInjector>(sim, net, *plan,
                                               std::move(hooks));
    injector->arm();
    // Scheduled fault windows are declared outages: only gaps the plan
    // does not explain count against liveness.
    for (const auto& [from, to] :
         plan->excused_windows(options.liveness_pad_s)) {
      monitor.declare_outage(from, to);
    }
  }

  // Declared outages from the compound threat itself: a flooded site
  // shapes service from t=0; isolation/intrusion effects start at attack
  // time. The liveness invariant only bites on unexplained gaps.
  bool any_flooded = false;
  bool any_attack = false;
  for (std::size_t s = 0; s < n_sites; ++s) {
    any_flooded |=
        attacked_state.site_status[s] == threat::SiteStatus::kFlooded;
    any_attack |=
        attacked_state.site_status[s] == threat::SiteStatus::kIsolated ||
        attacked_state.intrusions[s] > 0;
  }
  if (any_flooded) {
    monitor.declare_outage(0.0, options.horizon_s);
  } else if (any_attack) {
    monitor.declare_outage(options.attack_time_s, options.horizon_s);
  }

  // Timeline. Floods are in effect from t=0.
  for (std::size_t s = 0; s < n_sites; ++s) {
    if (attacked_state.site_status[s] == threat::SiteStatus::kFlooded) {
      net.set_site_down(static_cast<int>(s), true);
      sim.trace("site " + std::to_string(s) + " flooded (down from t=0)");
    }
  }
  for (auto& r : pb_replicas) r->start();
  for (auto& r : bft_replicas) r->start();
  for (auto& s : schedulers) s->start(options.bft.recovery_period_s);
  client.start(0.0, options.horizon_s);
  if (controller) controller->start(0.0, options.horizon_s);

  // The cyberattack fires at attack_time_s.
  sim.schedule_at(options.attack_time_s, [&] {
    for (std::size_t s = 0; s < n_sites; ++s) {
      if (attacked_state.site_status[s] == threat::SiteStatus::kIsolated) {
        net.set_site_isolated(static_cast<int>(s), true);
        sim.trace("site " + std::to_string(s) + " ISOLATED by attacker");
      }
      const int intrusions = attacked_state.intrusions[s];
      for (int node = 0; node < intrusions; ++node) {
        if (bft) {
          bft_by_site[s].at(static_cast<std::size_t>(node))->set_compromised(true);
        } else {
          pb_by_site[s].at(static_cast<std::size_t>(node))->set_compromised(true);
        }
        sim.trace("replica s" + std::to_string(s) + "/n" +
                  std::to_string(node) + " COMPROMISED by attacker");
      }
    }
  });

  sim.run_until(options.horizon_s);

  // Classify what the client observed.
  DesOutcome outcome;
  outcome.safety_violated = client.safety_violated();
  const double judge_to = options.horizon_s - 10.0;
  const double settle_from = options.horizon_s - options.settle_window_s;
  outcome.steady_availability = client.success_fraction(settle_from, judge_to);
  outcome.max_outage_s = client.max_gap(0.0, judge_to);
  outcome.events = sim.events_processed();
  outcome.messages = net.messages_sent();
  outcome.truncated = sim.event_limit_hit();
  outcome.drops = net.drop_counters();
  outcome.duplicates = net.messages_duplicated();
  monitor.finalize(0.0, judge_to);
  outcome.invariant_violations = monitor.violations();
  outcome.availability_timeline =
      client.availability_series(60.0, 0.0, options.horizon_s);
  outcome.trace = sim.trace_log();

  // Recovery accounting across both stacks.
  const auto fold_stats = [&outcome](const RejoinStats& s) {
    outcome.rejoins += s.rejoins;
    outcome.rejoin_failures += s.failures;
    outcome.transfer_retry_rounds += s.retry_rounds;
    outcome.max_catchup_s = std::max(outcome.max_catchup_s, s.max_catchup_s);
  };
  for (const auto& r : bft_replicas) {
    fold_stats(r->rejoin_stats());
    if (r->passive()) ++outcome.passive_replicas;
    outcome.stable_checkpoints += r->checkpoints_formed();
  }
  for (const auto& r : pb_replicas) fold_stats(r->rejoin_stats());

  if (outcome.truncated) {
    CT_LOG(kWarn, "scada_des")
        << "run for configuration '" << config.name
        << "' hit the event limit (" << outcome.events
        << " events) — observed color may be wrong";
  }

  if (outcome.safety_violated) {
    outcome.observed = threat::OperationalState::kGray;
  } else if (outcome.steady_availability < 0.5) {
    outcome.observed = threat::OperationalState::kRed;
  } else if (outcome.max_outage_s > options.orange_gap_s) {
    outcome.observed = threat::OperationalState::kOrange;
  } else {
    outcome.observed = threat::OperationalState::kGreen;
  }
  return outcome;
}


}  // namespace ct::sim::refdes
