#include "sim/state_transfer.h"

#include <algorithm>

namespace ct::sim {

double BackoffPolicy::delay(int attempt, util::Rng* rng) const {
  double d = initial_s;
  for (int i = 0; i < attempt; ++i) {
    d = std::min(cap_s, d * multiplier);
  }
  d = std::min(cap_s, d);
  if (rng != nullptr && jitter_fraction > 0.0) {
    d += rng->uniform(0.0, jitter_fraction * d);
  }
  return d;
}

std::int64_t state_digest(const std::vector<std::int64_t>& sorted_ids) {
  // FNV-1a over the id bytes, folded into the non-negative int64 range so
  // the digest can travel in Message::value.
  std::uint64_t h = kStateDigestSeed;
  for (std::int64_t id : sorted_ids) {
    h = state_digest_extend(h, id);
  }
  return state_digest_fold(h);
}

StateTransferClient::StateTransferClient(Simulator& sim,
                                         StateTransferOptions options,
                                         int matching_needed,
                                         Callbacks callbacks)
    : sim_(sim),
      options_(options),
      matching_needed_(std::max(1, matching_needed)),
      callbacks_(std::move(callbacks)) {}

void StateTransferClient::begin() {
  ++epoch_;
  in_progress_ = true;
  round_ = 1;
  started_at_ = sim_.now();
  replies_.clear();
  send_round();
}

void StateTransferClient::abort() {
  if (!in_progress_) return;
  in_progress_ = false;
  // Bumping the epoch invalidates in-flight replies and pending timeouts.
  ++epoch_;
  replies_.clear();
}

void StateTransferClient::send_round() {
  callbacks_.send_request(epoch_);
  const std::int64_t epoch = epoch_;
  const int round = round_;
  sim_.schedule_in(options_.round_timeout_s,
                   [this, epoch, round] { round_timed_out(epoch, round); });
}

void StateTransferClient::round_timed_out(std::int64_t epoch, int round) {
  if (!in_progress_ || epoch != epoch_ || round != round_) return;
  if (round_ >= options_.max_rounds) {
    in_progress_ = false;
    ++failed_;
    replies_.clear();
    callbacks_.fail(round_);
    return;
  }
  ++retry_rounds_;
  const double wait = options_.backoff.delay(round_ - 1);
  ++round_;
  const std::int64_t cur_epoch = epoch_;
  const int cur_round = round_;
  sim_.schedule_in(wait, [this, cur_epoch, cur_round] {
    if (!in_progress_ || cur_epoch != epoch_ || cur_round != round_) return;
    send_round();
  });
}

void StateTransferClient::on_reply(const Message& msg) {
  if (!in_progress_ || msg.request_id != epoch_) return;
  Reply reply;
  reply.count = msg.seq;
  reply.digest = msg.value;
  reply.ids = msg.payload;
  std::sort(reply.ids.begin(), reply.ids.end());
  replies_[{msg.sender.site, msg.sender.node}] = std::move(reply);
  try_complete();
}

void StateTransferClient::try_complete() {
  // Group replies by certificate (count, digest); install once any
  // certificate has matching_needed distinct voters. Certificates are
  // scanned in ascending order, matching the historical std::map walk.
  std::vector<std::pair<std::pair<std::int64_t, std::int64_t>, int>> votes;
  for (const auto& [sender, reply] : replies_) {
    (void)sender;
    const std::pair<std::int64_t, std::int64_t> cert{reply.count,
                                                     reply.digest};
    bool counted = false;
    for (auto& [known, n] : votes) {
      if (known == cert) {
        ++n;
        counted = true;
        break;
      }
    }
    if (!counted) votes.emplace_back(cert, 1);
  }
  std::sort(votes.begin(), votes.end());
  for (const auto& [cert, n] : votes) {
    if (n < matching_needed_) continue;
    Result result;
    result.count = cert.first;
    result.digest = cert.second;
    result.rounds = round_;
    result.elapsed_s = sim_.now() - started_at_;
    // Install only ids vouched for by >= matching_needed of the
    // cert-matching replies, so one stale tail cannot pollute the set.
    // Replies carry sorted ids; merge them, sort, and keep every id whose
    // run length reaches the threshold (ascending output, identical to
    // the historical per-id vote map).
    std::vector<std::int64_t> all_ids;
    for (const auto& [sender, reply] : replies_) {
      (void)sender;
      if (reply.count != cert.first || reply.digest != cert.second) continue;
      all_ids.insert(all_ids.end(), reply.ids.begin(), reply.ids.end());
    }
    std::sort(all_ids.begin(), all_ids.end());
    for (std::size_t i = 0; i < all_ids.size();) {
      std::size_t j = i;
      while (j < all_ids.size() && all_ids[j] == all_ids[i]) ++j;
      if (j - i >= static_cast<std::size_t>(matching_needed_)) {
        result.ids.push_back(all_ids[i]);
      }
      i = j;
    }
    in_progress_ = false;
    ++completed_;
    max_catchup_s_ = std::max(max_catchup_s_, result.elapsed_s);
    replies_.clear();
    ++epoch_;  // invalidate any still-pending timeout
    callbacks_.install(result);
    return;
  }
}

}  // namespace ct::sim
