#include "sim/state_transfer.h"

#include <algorithm>

namespace ct::sim {

double BackoffPolicy::delay(int attempt, util::Rng* rng) const {
  double d = initial_s;
  for (int i = 0; i < attempt; ++i) {
    d = std::min(cap_s, d * multiplier);
  }
  d = std::min(cap_s, d);
  if (rng != nullptr && jitter_fraction > 0.0) {
    d += rng->uniform(0.0, jitter_fraction * d);
  }
  return d;
}

std::int64_t state_digest(const std::vector<std::int64_t>& sorted_ids) {
  // FNV-1a over the id bytes, folded into the non-negative int64 range so
  // the digest can travel in Message::value.
  std::uint64_t h = 14695981039346656037ull;
  for (std::int64_t id : sorted_ids) {
    auto u = static_cast<std::uint64_t>(id);
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (u >> (byte * 8)) & 0xffull;
      h *= 1099511628211ull;
    }
  }
  return static_cast<std::int64_t>(h & 0x7fffffffffffffffull);
}

StateTransferClient::StateTransferClient(Simulator& sim,
                                         StateTransferOptions options,
                                         int matching_needed,
                                         Callbacks callbacks)
    : sim_(sim),
      options_(options),
      matching_needed_(std::max(1, matching_needed)),
      callbacks_(std::move(callbacks)) {}

void StateTransferClient::begin() {
  ++epoch_;
  in_progress_ = true;
  round_ = 1;
  started_at_ = sim_.now();
  replies_.clear();
  send_round();
}

void StateTransferClient::abort() {
  if (!in_progress_) return;
  in_progress_ = false;
  // Bumping the epoch invalidates in-flight replies and pending timeouts.
  ++epoch_;
  replies_.clear();
}

void StateTransferClient::send_round() {
  callbacks_.send_request(epoch_);
  const std::int64_t epoch = epoch_;
  const int round = round_;
  sim_.schedule_in(options_.round_timeout_s,
                   [this, epoch, round] { round_timed_out(epoch, round); });
}

void StateTransferClient::round_timed_out(std::int64_t epoch, int round) {
  if (!in_progress_ || epoch != epoch_ || round != round_) return;
  if (round_ >= options_.max_rounds) {
    in_progress_ = false;
    ++failed_;
    replies_.clear();
    callbacks_.fail(round_);
    return;
  }
  ++retry_rounds_;
  const double wait = options_.backoff.delay(round_ - 1);
  ++round_;
  const std::int64_t cur_epoch = epoch_;
  const int cur_round = round_;
  sim_.schedule_in(wait, [this, cur_epoch, cur_round] {
    if (!in_progress_ || cur_epoch != epoch_ || cur_round != round_) return;
    send_round();
  });
}

void StateTransferClient::on_reply(const Message& msg) {
  if (!in_progress_ || msg.request_id != epoch_) return;
  Reply reply;
  reply.count = msg.seq;
  reply.digest = msg.value;
  reply.ids = msg.payload;
  std::sort(reply.ids.begin(), reply.ids.end());
  replies_[{msg.sender.site, msg.sender.node}] = std::move(reply);
  try_complete();
}

void StateTransferClient::try_complete() {
  // Group replies by certificate (count, digest); install once any
  // certificate has matching_needed distinct voters.
  std::map<std::pair<std::int64_t, std::int64_t>, int> votes;
  for (const auto& [sender, reply] : replies_) {
    (void)sender;
    ++votes[{reply.count, reply.digest}];
  }
  for (const auto& [cert, n] : votes) {
    if (n < matching_needed_) continue;
    Result result;
    result.count = cert.first;
    result.digest = cert.second;
    result.rounds = round_;
    result.elapsed_s = sim_.now() - started_at_;
    // Install only ids vouched for by >= matching_needed of the
    // cert-matching replies, so one stale tail cannot pollute the set.
    std::map<std::int64_t, int> id_votes;
    for (const auto& [sender, reply] : replies_) {
      (void)sender;
      if (reply.count != cert.first || reply.digest != cert.second) continue;
      for (std::int64_t id : reply.ids) ++id_votes[id];
    }
    for (const auto& [id, id_n] : id_votes) {
      if (id_n >= matching_needed_) result.ids.push_back(id);
    }
    in_progress_ = false;
    ++completed_;
    max_catchup_s_ = std::max(max_catchup_s_, result.elapsed_s);
    replies_.clear();
    ++epoch_;  // invalidate any still-pending timeout
    callbacks_.install(result);
    return;
  }
}

}  // namespace ct::sim
