#include "sim/simulator.h"

#include <cstdio>
#include <stdexcept>

namespace ct::sim {

void Simulator::schedule_at(SimTime t, Action action) {
  if (t < now_) {
    throw std::invalid_argument("Simulator: cannot schedule in the past");
  }
  if (!action) {
    throw std::invalid_argument("Simulator: null action");
  }
  queue_.push({t, next_seq_++, std::move(action)});
}

void Simulator::schedule_in(SimTime delay, Action action) {
  schedule_at(now_ + delay, std::move(action));
}

void Simulator::run_until(SimTime end_time) {
  while (!queue_.empty() && queue_.top().time <= end_time) {
    if (event_limit_ != 0 && processed_ >= event_limit_) {
      limit_hit_ = true;
      break;
    }
    // priority_queue::top returns const&; the action must be moved out
    // before pop, so copy the header and move via const_cast-free path:
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++processed_;
    ev.action();
  }
  if (now_ < end_time) now_ = end_time;
}

void Simulator::trace(const std::string& line) {
  if (!tracing_) return;
  char stamp[32];
  std::snprintf(stamp, sizeof stamp, "[%9.3f] ", now_);
  trace_.push_back(stamp + line);
}

}  // namespace ct::sim
