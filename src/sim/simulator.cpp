#include "sim/simulator.h"

#include <bit>
#include <cstdio>

namespace ct::sim {

std::uint32_t Simulator::alloc_slot() {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(slab_.size());
  if (slot > kSlotMask) {
    throw std::length_error("Simulator: event slab exhausted");
  }
  slab_.emplace_back();
  ++stats_.slab_grows;
  return slot;
}

void Simulator::enqueue(SimTime t, std::uint32_t slot) {
  if (next_seq_ > (~std::uint64_t{0} >> kSlotBits)) {
    throw std::length_error("Simulator: sequence space exhausted");
  }
  insert_entry({t, (next_seq_++ << kSlotBits) | slot});
}

void Simulator::insert_entry(const HeapEntry& e) {
  std::uint64_t tick = time_tick(e.time);
  if (tick < wheel_base_) {
    // Scheduling below the window: only reachable between run_until calls
    // after the window rebased onto a far-future event. Rare by design.
    rebase(tick);
  }
  if (tick < wheel_base_ + kWheelSize) {
    Bucket& b = wheel_[tick & kWheelMask];
    if (b.drained()) mark_occupied(tick & kWheelMask);
    b.insert_sorted(e);
    ++wheel_count_;
  } else {
    overflow_.push_back(e);
    overflow_sift_up(overflow_.size() - 1);
  }
  ++pending_;
  peeked_bucket_ = kWheelSize;
  if (pending_ > stats_.peak_queue) stats_.peak_queue = pending_;
}

void Simulator::rebase(std::uint64_t tick) {
  // Dump any wheel contents into overflow_ (the wheel is almost always
  // empty here), repoint the window, then pull back everything that fits.
  if (wheel_count_ != 0) {
    for (std::size_t word = 0; word < occupancy_.size(); ++word) {
      std::uint64_t bits = occupancy_[word];
      while (bits != 0) {
        const std::size_t idx =
            (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        Bucket& b = wheel_[idx];
        overflow_.insert(overflow_.end(), b.v.begin() + b.head, b.v.end());
        b.v.clear();
        b.head = 0;
      }
      occupancy_[word] = 0;
    }
    wheel_count_ = 0;
  }
  wheel_base_ = cursor_ = tick;
  std::size_t kept = 0;
  for (const HeapEntry& e : overflow_) {
    const std::uint64_t tk = time_tick(e.time);
    if (tk < wheel_base_ + kWheelSize) {
      Bucket& b = wheel_[tk & kWheelMask];
      if (b.drained()) mark_occupied(tk & kWheelMask);
      b.insert_sorted(e);
      ++wheel_count_;
    } else {
      overflow_[kept++] = e;
    }
  }
  overflow_.resize(kept);
  // Restore the 4-ary heap property over the survivors (bottom-up).
  if (kept > 1) {
    for (std::size_t i = (kept - 2) / 4 + 1; i-- > 0;) {
      overflow_sift_down(i);
    }
  }
  peeked_bucket_ = kWheelSize;
}

const Simulator::HeapEntry* Simulator::peek_min() {
  if (pending_ == 0) return nullptr;
  if (wheel_count_ == 0) {
    rebase(time_tick(overflow_.front().time));
  }
  // Circular occupancy scan starting at the cursor. Buckets behind the
  // cursor are empty (events pop in time order), so the first set bit is
  // the wheel's — and therefore the queue's — minimum tick.
  const std::uint64_t from = cursor_ < wheel_base_ ? wheel_base_ : cursor_;
  std::size_t word = static_cast<std::size_t>((from & kWheelMask) >> 6);
  std::uint64_t bits =
      occupancy_[word] & (~std::uint64_t{0} << (from & 63));
  const std::size_t words = occupancy_.size();
  for (std::size_t scanned = 0; scanned <= words; ++scanned) {
    if (bits != 0) {
      const std::size_t idx =
          (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
      peeked_bucket_ = idx;
      const Bucket& b = wheel_[idx];
      return &b.v[b.head];
    }
    word = word + 1 == words ? 0 : word + 1;
    bits = occupancy_[word];
  }
  return nullptr;  // unreachable: wheel_count_ > 0
}

void Simulator::pop_top() {
  Bucket& b = wheel_[peeked_bucket_];
  cursor_ = time_tick(b.v[b.head].time);
  ++b.head;
  if (b.drained()) {
    b.v.clear();
    b.head = 0;
    mark_empty(peeked_bucket_);
  }
  --wheel_count_;
  --pending_;
  peeked_bucket_ = kWheelSize;
}

void Simulator::overflow_sift_up(std::size_t i) noexcept {
  const HeapEntry e = overflow_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!later(overflow_[parent], e)) break;
    overflow_[i] = overflow_[parent];
    i = parent;
  }
  overflow_[i] = e;
}

void Simulator::overflow_sift_down(std::size_t i) noexcept {
  const std::size_t n = overflow_.size();
  const HeapEntry e = overflow_[i];
  for (;;) {
    const std::size_t first = (i << 2) + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (later(overflow_[best], overflow_[c])) best = c;
    }
    if (!later(e, overflow_[best])) break;
    overflow_[i] = overflow_[best];
    i = best;
  }
  overflow_[i] = e;
}

void Simulator::run_until(SimTime end_time) {
  for (;;) {
    const HeapEntry* top = peek_min();
    if (top == nullptr || top->time > end_time) break;
    if (event_limit_ != 0 && processed_ >= event_limit_) {
      limit_hit_ = true;
      break;
    }
    const HeapEntry e = *top;
    pop_top();
    now_ = e.time;
    ++processed_;
    const auto slot = static_cast<std::uint32_t>(e.seq_slot & kSlotMask);
    // Move the callable out and free its slot *before* invoking it: the
    // handler may schedule successors (which then reuse this very slot —
    // the zero-allocation steady state) or grow the slab, so `slab_`
    // references must not be held across the call.
    EventFn fn = std::move(slab_[slot]);
    slab_[slot].reset();
    free_.push_back(slot);
    fn.consume();
  }
  if (now_ < end_time) now_ = end_time;
}

void Simulator::trace(std::string_view line) {
  if (!tracing_) return;
  char stamp[32];
  std::snprintf(stamp, sizeof stamp, "[%9.3f] ", now_);
  std::string entry(stamp);
  entry.append(line);
  trace_.push_back(std::move(entry));
}

void Simulator::reset() {
  for (std::size_t word = 0; word < occupancy_.size(); ++word) {
    std::uint64_t bits = occupancy_[word];
    while (bits != 0) {
      const std::size_t idx =
          (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      Bucket& b = wheel_[idx];
      for (std::size_t i = b.head; i < b.v.size(); ++i) {
        const auto slot =
            static_cast<std::uint32_t>(b.v[i].seq_slot & kSlotMask);
        slab_[slot].reset();
        free_.push_back(slot);
      }
      b.v.clear();
      b.head = 0;
    }
    occupancy_[word] = 0;
  }
  for (const HeapEntry& e : overflow_) {
    const auto slot = static_cast<std::uint32_t>(e.seq_slot & kSlotMask);
    slab_[slot].reset();
    free_.push_back(slot);
  }
  overflow_.clear();
  wheel_base_ = 0;
  cursor_ = 0;
  wheel_count_ = 0;
  pending_ = 0;
  peeked_bucket_ = kWheelSize;
  now_ = 0.0;
  next_seq_ = 0;
  processed_ = 0;
  event_limit_ = 0;
  limit_hit_ = false;
  tracing_ = false;
  trace_.clear();
  stats_.slab_grows = 0;
  stats_.peak_queue = 0;
}

}  // namespace ct::sim
