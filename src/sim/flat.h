// Flat sorted containers for the DES protocol hot paths. The replication
// stacks track per-request and per-view bookkeeping in collections that
// stay tiny (tens of entries, bounded by the checkpoint interval) but are
// touched on every message; std::map/std::set pay a heap allocation and a
// pointer chase per node for that. FlatMap/FlatSet keep the same sorted
// iteration order and uniqueness semantics in one contiguous vector, and
// VoteMask replaces std::set<int> voter sets with a fixed-width bitmask
// (replica groups are capped at 64 members).
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

namespace ct::sim {

/// Sorted-vector map: the subset of std::map the simulator uses, with
/// identical (ascending) iteration order. Keys must be < comparable.
template <class Key, class Value>
class FlatMap {
 public:
  using value_type = std::pair<Key, Value>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  iterator begin() noexcept { return v_.begin(); }
  iterator end() noexcept { return v_.end(); }
  const_iterator begin() const noexcept { return v_.begin(); }
  const_iterator end() const noexcept { return v_.end(); }
  std::size_t size() const noexcept { return v_.size(); }
  bool empty() const noexcept { return v_.empty(); }
  void clear() noexcept { v_.clear(); }

  iterator find(const Key& key) {
    const iterator it = lower_bound(key);
    return it != v_.end() && !(key < it->first) ? it : v_.end();
  }
  const_iterator find(const Key& key) const {
    const const_iterator it = lower_bound(key);
    return it != v_.end() && !(key < it->first) ? it : v_.end();
  }
  bool contains(const Key& key) const { return find(key) != v_.end(); }

  Value& operator[](const Key& key) {
    const iterator it = lower_bound(key);
    if (it != v_.end() && !(key < it->first)) return it->second;
    return v_.insert(it, {key, Value{}})->second;
  }

  template <class... Args>
  std::pair<iterator, bool> try_emplace(const Key& key, Args&&... args) {
    const iterator it = lower_bound(key);
    if (it != v_.end() && !(key < it->first)) return {it, false};
    return {v_.insert(it, {key, Value{std::forward<Args>(args)...}}), true};
  }

  std::size_t erase(const Key& key) {
    const iterator it = find(key);
    if (it == v_.end()) return 0;
    v_.erase(it);
    return 1;
  }
  iterator erase(iterator it) { return v_.erase(it); }

  /// Removes every entry with key <= `key` (the std::map
  /// `erase(begin(), upper_bound(key))` idiom).
  void erase_upto(const Key& key) {
    v_.erase(v_.begin(),
             std::upper_bound(v_.begin(), v_.end(), key,
                              [](const Key& k, const value_type& e) {
                                return k < e.first;
                              }));
  }

  template <class Pred>
  void erase_if(Pred pred) {
    v_.erase(std::remove_if(v_.begin(), v_.end(), pred), v_.end());
  }

 private:
  iterator lower_bound(const Key& key) {
    return std::lower_bound(v_.begin(), v_.end(), key,
                            [](const value_type& e, const Key& k) {
                              return e.first < k;
                            });
  }
  const_iterator lower_bound(const Key& key) const {
    return std::lower_bound(v_.begin(), v_.end(), key,
                            [](const value_type& e, const Key& k) {
                              return e.first < k;
                            });
  }

  std::vector<value_type> v_;
};

/// Sorted-vector set with std::set's ascending iteration order.
template <class Key>
class FlatSet {
 public:
  using iterator = typename std::vector<Key>::const_iterator;

  iterator begin() const noexcept { return v_.begin(); }
  iterator end() const noexcept { return v_.end(); }
  std::size_t size() const noexcept { return v_.size(); }
  bool empty() const noexcept { return v_.empty(); }
  void clear() noexcept { v_.clear(); }

  bool contains(const Key& key) const {
    const auto it = std::lower_bound(v_.begin(), v_.end(), key);
    return it != v_.end() && !(key < *it);
  }

  /// Returns true when the key was newly inserted.
  bool insert(const Key& key) {
    const auto it = std::lower_bound(v_.begin(), v_.end(), key);
    if (it != v_.end() && !(key < *it)) return false;
    v_.insert(it, key);
    return true;
  }

  template <class It>
  void insert(It first, It last) {
    for (; first != last; ++first) insert(*first);
  }

  std::size_t erase(const Key& key) {
    const auto it = std::lower_bound(v_.begin(), v_.end(), key);
    if (it == v_.end() || key < *it) return 0;
    v_.erase(it);
    return 1;
  }

  template <class Pred>
  void erase_if(Pred pred) {
    v_.erase(std::remove_if(v_.begin(), v_.end(), pred), v_.end());
  }

  /// Bulk set-difference: removes every key in [first, last), which must
  /// be sorted ascending. One pass, unlike repeated erase() calls.
  template <class It>
  void erase_sorted(It first, It last) {
    if (first == last || v_.empty()) return;
    auto keep = v_.begin();
    for (auto it = v_.begin(); it != v_.end(); ++it) {
      while (first != last && *first < *it) ++first;
      if (first != last && !(*it < *first)) continue;  // drop
      *keep++ = *it;
    }
    v_.erase(keep, v_.end());
  }

 private:
  std::vector<Key> v_;
};

/// Fixed-width voter bitmask for quorum tallies. Replica groups are capped
/// at 64 members (asserted at group construction); the simulator's largest
/// paper configuration uses 18.
struct VoteMask {
  std::uint64_t bits = 0;

  /// Returns true when voter `i` was not yet counted.
  bool insert(int i) noexcept {
    const std::uint64_t bit = 1ull << static_cast<unsigned>(i);
    const bool fresh = (bits & bit) == 0;
    bits |= bit;
    return fresh;
  }
  int count() const noexcept { return std::popcount(bits); }
};

}  // namespace ct::sim
