// Protocol invariant monitor: a passive observer wired into the replicas
// and the client workload that checks, during a simulated run,
//
//   SAFETY-AGREEMENT  no two correct replicas of the same replication
//                     group execute different operations at the same
//                     (view, sequence) slot — only an equivocating
//                     (compromised) leader can cause that;
//   SAFETY-FORGERY    the client never accepts a forged reply while at
//                     most f replicas are compromised;
//   LIVENESS          outside declared outage windows, the gap between
//                     consecutive correct request completions stays under
//                     a bound;
//   STATE-TRANSFER    a rejoined replica only installs state that matches
//                     a checkpoint certificate some correct replica voted
//                     for — a divergent transfer (wrong digest for the
//                     claimed count) is a safety violation.
//
// Violations are recorded as human-readable strings and surfaced through
// DesOutcome::invariant_violations; a clean chaos sweep is one where every
// run's monitor comes back empty.
#pragma once

#include <cstdint>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "sim/flat.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace ct::sim {

struct InvariantOptions {
  /// Intrusions the architecture tolerates: accepting a forged reply with
  /// at most `f` compromised replicas is a safety violation; with f+1 or
  /// more it is the expected gray outcome.
  int f = 0;
  /// Liveness bound on the gap between correct completions outside
  /// declared outage windows (0 disables the liveness check).
  double liveness_gap_s = 0.0;
};

class InvariantMonitor {
 public:
  InvariantMonitor(Simulator& sim, InvariantOptions options);

  // ---- wiring: called by the protocol objects during the run ----

  /// A correct replica of `group` executed `request_id` at slot
  /// (view, seq). The slot is per-view because this simulator's BFT
  /// leaders do not transfer their sequence counter across view changes
  /// (the same request may legitimately re-commit at a fresh seq after a
  /// view change); within a view, one slot maps to exactly one request.
  void on_execute(NodeAddr replica, int group, std::int64_t view,
                  std::int64_t seq, std::int64_t request_id);
  /// A replica fell to the attacker.
  void on_compromise(NodeAddr replica);
  /// The client accepted a result (corrupt = forged signature quorum).
  void on_client_accept(std::int64_t request_id, bool corrupt);
  /// A correct replica of `group` voted for checkpoint (count, digest).
  void on_checkpoint(NodeAddr replica, int group, std::int64_t count,
                     std::int64_t digest);
  /// A rejoining replica of `group` installed transferred state claiming
  /// certificate (count, digest). Unless the install is trivial
  /// (count == 0), the certificate must match some checkpoint a correct
  /// replica voted for — otherwise the transfer handed the rejoiner
  /// divergent state.
  void on_state_install(NodeAddr replica, int group, std::int64_t count,
                        std::int64_t digest);

  // ---- declared expectations ----

  /// Excuses liveness over [from, to): flood/attack effects and scheduled
  /// fault windows are declared up front, so only *unexplained* outages
  /// count as violations.
  void declare_outage(double from, double to);

  /// Runs the liveness check over [judge_from, judge_to) against the
  /// correct-completion timestamps observed so far. Call once, after the
  /// simulation finishes.
  void finalize(double judge_from, double judge_to);

  int compromised_count() const noexcept {
    return static_cast<int>(compromised_.size());
  }
  const std::vector<std::string>& violations() const noexcept {
    return violations_;
  }
  bool ok() const noexcept { return violations_.empty(); }

 private:
  void record(const std::string& violation);
  /// Longest sub-interval of [from, to] not covered by declared outages.
  double uncovered_span(double from, double to) const;

  Simulator& sim_;
  InvariantOptions options_;
  /// (group, view, seq) -> first (request_id, replica) committed there.
  FlatMap<std::tuple<int, std::int64_t, std::int64_t>,
          std::pair<std::int64_t, NodeAddr>>
      committed_;
  FlatSet<std::pair<int, int>> compromised_;  // (site, node)
  /// group -> checkpoint certificates (count, digest) correct replicas
  /// voted for; installs are validated against this set.
  FlatMap<int, FlatSet<std::pair<std::int64_t, std::int64_t>>> checkpoints_;
  std::vector<std::pair<double, double>> outages_;  // merged lazily
  std::vector<double> correct_accepts_;
  std::vector<std::string> violations_;
};

}  // namespace ct::sim
