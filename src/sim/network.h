// Simulated wide-area network connecting control sites and the field
// (RTU/client) site. Models per-link latency and the two failure modes of
// the compound threat: a site going DOWN (flooded — its nodes neither send
// nor receive) and a site being ISOLATED (network-level attack — its nodes
// keep running but no traffic crosses the site boundary, matching the
// paper's site-isolation semantics).
//
// Hot-path layout: in-flight messages live in a refcounted slot pool (a
// deque, so slots stay address-stable while handlers send re-entrantly)
// and deliveries are scheduled as 16-byte {this, to, slot} closures. A
// broadcast to N replicas materializes the message payload once into one
// shared slot instead of copying it N times; released slots keep their
// payload capacity and are recycled through a freelist.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "util/rng.h"

namespace ct::sim {

/// Address of a process: (site index, node index within site).
struct NodeAddr {
  int site = 0;
  int node = 0;

  bool operator==(const NodeAddr&) const = default;
};

std::string to_string(NodeAddr a);

/// Protocol message. One struct covers all protocols in the simulator;
/// unused fields are zero.
struct Message {
  enum class Type {
    kRequest,     ///< client -> replicas: order this operation
    kReply,       ///< replica -> client: operation result
    kProposal,    ///< BFT leader -> replicas: assign seq to request
    kAccept,      ///< BFT replica -> replicas: vote for a proposal
    kHeartbeat,   ///< PB primary -> standby liveness signal
    kActivate,    ///< failover controller -> cold site: start serving
    kViewChange,  ///< BFT replica -> replicas: move to a new view
    kActivateAck,    ///< activated node -> controller: activation received
    kCheckpoint,     ///< replica -> replicas: vote for (count, digest)
    kStateRequest,   ///< rejoining replica -> peers: send me your state
    kStateReply,     ///< peer -> rejoiner: stable cert + executed ids
  };

  Type type = Type::kRequest;
  NodeAddr sender;
  std::int64_t request_id = 0;
  std::int64_t seq = 0;    ///< BFT sequence number.
  std::int64_t view = 0;   ///< BFT view number.
  std::int64_t value = 0;  ///< Execution result carried by kReply.
  bool corrupt = false;    ///< Reply forged by a compromised replica.
  /// Bulk data for kStateReply: the sender's executed request ids.
  std::vector<std::int64_t> payload;
};

/// True for recovery-plane traffic (activation, checkpointing, state
/// transfer) — the messages `control_loss_probability` targets.
bool is_control_message(Message::Type t) noexcept;

std::string to_string(Message::Type t);

/// Latency and impairment parameters. Loss, jitter, duplication and
/// reordering default to off; the protocol robustness and chaos tests turn
/// them on to check that the Table-I classification is stable under an
/// imperfect WAN.
struct NetworkOptions {
  double intra_site_latency_s = 0.002;
  double inter_site_latency_s = 0.025;
  /// Independent per-message drop probability.
  double loss_probability = 0.0;
  /// Uniform extra delay in [0, jitter] added per message (s).
  double latency_jitter_s = 0.0;
  /// Probability that a delivered message is delivered twice (the copy
  /// draws its own latency, so duplicates may arrive out of order).
  double duplicate_probability = 0.0;
  /// Probability that a message is held back by up to `reorder_window_s`,
  /// letting later traffic overtake it (bounded reordering).
  double reorder_probability = 0.0;
  double reorder_window_s = 0.0;
  /// Extra, independent drop probability applied only to recovery-plane
  /// traffic (kActivate/kActivateAck/kCheckpoint/kStateRequest/kStateReply)
  /// on top of `loss_probability`. Chaos plans use it to starve the state
  /// transfer retry budget without disturbing the ordering protocol.
  double control_loss_probability = 0.0;
  /// Seed for the (deterministic) loss/jitter/duplication stream.
  std::uint64_t impairment_seed = 1;
};

/// Messages dropped, broken down by cause. `total()` preserves the old
/// single-counter view; the per-cause split is what chaos runs report.
struct DropCounters {
  std::uint64_t loss = 0;        ///< Random WAN loss.
  std::uint64_t site_down = 0;   ///< Endpoint site down at send time.
  std::uint64_t isolation = 0;   ///< Endpoint site isolated at send time.
  std::uint64_t link_down = 0;   ///< Inter-site link flapped down.
  std::uint64_t crashed = 0;     ///< Endpoint node crashed.
  std::uint64_t in_flight = 0;   ///< In flight into a site that flooded /
                                 ///< isolated / crashed before delivery.
  std::uint64_t transfer_loss = 0;  ///< Recovery-plane traffic dropped by
                                    ///< control_loss_probability.

  std::uint64_t total() const noexcept {
    return loss + site_down + isolation + link_down + crashed + in_flight +
           transfer_loss;
  }
};

class Network {
 public:
  using Handler = std::function<void(const Message&)>;

  /// Message-slot recycling statistics. In arena-reuse mode a warmed
  /// network re-running the same workload must show pool_misses == 0.
  struct PoolStats {
    std::uint64_t materializations = 0;  ///< messages copied into a slot
    std::uint64_t pool_hits = 0;         ///< slots served from the freelist
    std::uint64_t pool_misses = 0;       ///< new slots created this run
  };

  /// `nodes_per_site[s]` is the number of processes at site s.
  Network(Simulator& sim, std::vector<int> nodes_per_site,
          NetworkOptions options = {});

  int site_count() const noexcept { return static_cast<int>(nodes_per_site_.size()); }
  int nodes_at(int site) const { return nodes_per_site_.at(static_cast<std::size_t>(site)); }

  /// Installs the receive handler for a node (replaces any previous one).
  void register_handler(NodeAddr addr, Handler handler);

  /// Site failure controls.
  void set_site_down(int site, bool down);
  void set_site_isolated(int site, bool isolated);
  bool site_down(int site) const;
  bool site_isolated(int site) const;

  /// Node crash control (fault injection): a crashed node neither sends
  /// nor receives; its protocol timers keep running, modeling a process
  /// whose host is temporarily off the network and restarts with state.
  void set_node_crashed(NodeAddr addr, bool crashed);
  bool node_crashed(NodeAddr addr) const;

  /// Link flapping (fault injection): takes down traffic between two
  /// specific sites without touching either site's health. Order of the
  /// pair does not matter.
  void set_link_down(int site_a, int site_b, bool down);
  bool link_down(int site_a, int site_b) const;

  /// True when a message from `from` would currently be delivered to `to`.
  bool can_communicate(NodeAddr from, NodeAddr to) const;

  /// Sends a message; delivery is scheduled after the link latency if the
  /// two nodes can communicate AT SEND TIME and the destination site is
  /// still up at delivery (in-flight traffic into a newly flooded site is
  /// dropped).
  void send(NodeAddr from, NodeAddr to, const Message& msg);

  /// Sends to every node of every site except the sender itself. The
  /// message is materialized into one pooled slot shared by all targets.
  void broadcast(NodeAddr from, const Message& msg);

  /// Sends to each target in order, skipping `from` itself, sharing one
  /// materialized slot across every delivery — the zero-copy path for
  /// protocol groups that span sites (a replication group is neither one
  /// site nor the whole network). Per-target impairment draws happen in
  /// exactly the order of the equivalent send() loop.
  void send_group(NodeAddr from, const std::vector<NodeAddr>& targets,
                  const Message& msg);

  /// Sends to every node at `site` (excluding `from` if it lives there).
  void send_to_site(NodeAddr from, int site, const Message& msg);

  /// Re-arms the network for a fresh run on the same arena: topology and
  /// options are reconfigured, health/counters/handlers are cleared, the
  /// impairment stream restarts from options.impairment_seed, and message
  /// slots return to the freelist with payload capacity intact. Must run
  /// against an already-reset Simulator (scheduled deliveries reference
  /// slots). Observably identical to constructing a fresh Network.
  void reset(std::vector<int> nodes_per_site, NetworkOptions options);

  std::uint64_t messages_sent() const noexcept { return sent_; }
  std::uint64_t messages_delivered() const noexcept { return delivered_; }
  /// Total drops across all causes (legacy single-counter view).
  std::uint64_t messages_dropped() const noexcept { return drops_.total(); }
  /// Drops broken down by cause.
  const DropCounters& drop_counters() const noexcept { return drops_; }
  /// Extra deliveries caused by duplication.
  std::uint64_t messages_duplicated() const noexcept { return duplicated_; }

  PoolStats pool_stats() const noexcept { return pool_; }

 private:
  struct Slot {
    Message msg;
    std::uint32_t refs = 0;
  };
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  void configure(std::vector<int> nodes_per_site, NetworkOptions options);
  std::size_t flat_index(NodeAddr a) const;
  void check_addr(NodeAddr a) const;
  /// Per-target send path shared by send/broadcast/send_to_site. Draws the
  /// per-target impairment stream in the exact legacy order; materializes
  /// `msg` into `*slot` only when the first target actually passes the
  /// send-time checks.
  void send_pooled(NodeAddr from, NodeAddr to, const Message& msg,
                   std::uint32_t* slot);
  /// Cold path: re-derives the drop cause in the legacy priority order
  /// (crashed > site down > isolation > link) once a block byte fired.
  void classify_send_drop(NodeAddr from, NodeAddr to);
  /// Recomputes the block bytes from the primary health state. Called on
  /// every (rare) health mutation so the per-message path is two loads.
  void refresh_blocks();
  std::size_t site_pair(int a, int b) const noexcept {
    return static_cast<std::size_t>(a) * nodes_per_site_.size() +
           static_cast<std::size_t>(b);
  }
  std::uint32_t materialize(NodeAddr from, const Message& msg);
  void deliver(NodeAddr to, std::uint32_t to_flat, std::uint32_t slot,
               double latency);
  void release(std::uint32_t slot);

  Simulator& sim_;
  std::vector<int> nodes_per_site_;
  NetworkOptions options_;
  std::vector<Handler> handlers_;     // flat, indexed by flat_index
  std::vector<std::size_t> offsets_;  // site -> first flat index
  std::vector<unsigned char> down_;
  std::vector<unsigned char> isolated_;
  std::vector<unsigned char> crashed_;    // flat, indexed by flat_index
  std::vector<unsigned char> link_down_;  // site_count^2, symmetric
  /// Derived: nonzero when the node cannot send/receive (crashed, or its
  /// site is down) — the whole send-time endpoint ladder in one byte.
  std::vector<unsigned char> node_block_;
  /// Derived: nonzero when cross-site traffic a->b is blocked (either side
  /// isolated, or the link flapped down); diagonal entries stay zero.
  std::vector<unsigned char> cross_block_;
  /// True when any probabilistic impairment (loss, control loss, jitter,
  /// duplication, reordering) is armed; false skips every RNG draw.
  bool impairments_ = false;
  std::deque<Slot> slots_;            // deque: stable across re-entrant sends
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t duplicated_ = 0;
  DropCounters drops_;
  PoolStats pool_;
  util::Rng impairment_rng_;
};

}  // namespace ct::sim
