#include "sim/primary_backup.h"

namespace ct::sim {

PbReplica::PbReplica(Simulator& sim, Network& net, NodeAddr self,
                     PbOptions options, bool site_initially_active)
    : sim_(sim), net_(net), self_(self), options_(options),
      active_(site_initially_active),
      primary_(site_initially_active && self.node == 0) {
  net_.register_handler(self_, [this](const Message& m) { on_message(m); });
}

void PbReplica::start() {
  last_heartbeat_ = sim_.now();
  heartbeat_loop();
  watchdog_loop();
}

void PbReplica::set_compromised(bool compromised) noexcept {
  if (compromised && !compromised_ && monitor_ != nullptr) {
    monitor_->on_compromise(self_);
  }
  compromised_ = compromised;
}

void PbReplica::become_primary() {
  if (primary_) return;
  primary_ = true;
  sim_.trace(to_string(self_) + " promoted to primary");
}

void PbReplica::on_message(const Message& msg) {
  switch (msg.type) {
    case Message::Type::kRequest: {
      // A compromised SM is attacker-controlled: it forges results whether
      // or not it is the official primary (the client cannot tell).
      if (compromised_) {
        Message reply;
        reply.type = Message::Type::kReply;
        reply.request_id = msg.request_id;
        reply.value = -msg.request_id;  // forged result
        reply.corrupt = true;
        net_.send(self_, msg.sender, reply);
        return;
      }
      if (active_ && primary_) {
        Message reply;
        reply.type = Message::Type::kReply;
        reply.request_id = msg.request_id;
        reply.value = msg.request_id;  // correct execution echoes the id
        net_.send(self_, msg.sender, reply);
      }
      return;
    }
    case Message::Type::kHeartbeat: {
      if (msg.sender.site == self_.site) last_heartbeat_ = sim_.now();
      return;
    }
    case Message::Type::kActivate: {
      if (active_ || activation_pending_) return;
      activation_pending_ = true;
      sim_.trace(to_string(self_) + " cold site activation started");
      sim_.schedule_in(options_.activation_delay_s, [this] {
        active_ = true;
        activation_pending_ = false;
        last_heartbeat_ = sim_.now();
        if (self_.node == 0) become_primary();
        sim_.trace(to_string(self_) + " cold site activation complete");
      });
      return;
    }
    default:
      return;  // BFT-only message types
  }
}

void PbReplica::heartbeat_loop() {
  if (active_ && primary_ && !compromised_) {
    Message hb;
    hb.type = Message::Type::kHeartbeat;
    net_.send_to_site(self_, self_.site, hb);
  }
  sim_.schedule_in(options_.heartbeat_interval_s, [this] { heartbeat_loop(); });
}

void PbReplica::watchdog_loop() {
  if (active_ && !primary_ &&
      sim_.now() - last_heartbeat_ >
          options_.heartbeat_timeout_s * timeout_scale_) {
    become_primary();
  }
  sim_.schedule_in(options_.heartbeat_interval_s, [this] { watchdog_loop(); });
}

FailoverController::FailoverController(Simulator& sim, Network& net,
                                       NodeAddr self,
                                       const ClientWorkload& workload,
                                       int backup_site, PbOptions options)
    : sim_(sim), net_(net), self_(self), workload_(workload),
      backup_site_(backup_site), options_(options) {}

void FailoverController::start(double start_s, double end_s) {
  start_s_ = start_s;
  end_s_ = end_s;
  sim_.schedule_at(start_s + options_.controller_check_interval_s,
                   [this] { check(); });
}

double FailoverController::last_success_time() const {
  double last = start_s_;
  for (const auto& r : workload_.records()) {
    if (r.completed_at >= 0.0 && !r.corrupt) {
      last = std::max(last, r.completed_at);
    }
  }
  return last;
}

void FailoverController::check() {
  if (sim_.now() >= end_s_) return;
  if (!activation_sent_ &&
      sim_.now() - last_success_time() > options_.controller_outage_threshold_s) {
    activation_sent_ = true;
    sim_.trace("failover controller activating backup site " +
               std::to_string(backup_site_));
    Message activate;
    activate.type = Message::Type::kActivate;
    net_.send_to_site(self_, backup_site_, activate);
  }
  sim_.schedule_in(options_.controller_check_interval_s, [this] { check(); });
}

}  // namespace ct::sim
