#include "sim/primary_backup.h"

namespace ct::sim {

PbReplica::PbReplica(Simulator& sim, Network& net, NodeAddr self,
                     PbOptions options, bool site_initially_active)
    : sim_(sim), net_(net), self_(self), options_(options),
      active_(site_initially_active),
      primary_(site_initially_active && self.node == 0) {
  // One matching peer suffices: primary-backup has no Byzantine quorum —
  // whichever site peer answers first is the surviving log.
  sync_ = std::make_unique<StateTransferClient>(
      sim_, options_.sync, 1,
      StateTransferClient::Callbacks{
          [this](std::int64_t epoch) {
            Message req;
            req.type = Message::Type::kStateRequest;
            req.request_id = epoch;
            req.seq = static_cast<std::int64_t>(executed_.size());
            net_.send_to_site(self_, self_.site, req);
          },
          [this](const StateTransferClient::Result& r) {
            executed_.insert(r.ids.begin(), r.ids.end());
            syncing_ = false;
            if (sim_.tracing()) {
              sim_.trace(to_string(self_) + " synced executed log (" +
                         std::to_string(r.ids.size()) + " ids)");
            }
          },
          [this](int rounds) {
            // Fail-open: availability beats consistency for this stack.
            syncing_ = false;
            if (sim_.tracing()) {
              sim_.trace(to_string(self_) + " log sync failed after " +
                         std::to_string(rounds) +
                         " rounds; serving from local log (fail-open)");
            }
          }});
  net_.register_handler(self_, [this](const Message& m) { on_message(m); });
}

void PbReplica::start() {
  last_heartbeat_ = sim_.now();
  heartbeat_loop();
  watchdog_loop();
}

void PbReplica::set_compromised(bool compromised) noexcept {
  if (compromised && !compromised_ && monitor_ != nullptr) {
    monitor_->on_compromise(self_);
  }
  compromised_ = compromised;
}

void PbReplica::become_primary() {
  if (primary_) return;
  primary_ = true;
  if (sim_.tracing()) {
    sim_.trace(to_string(self_) + " promoted to primary");
  }
  start_sync("promotion");
}

void PbReplica::start_sync(const char* reason) {
  if (!active_ || compromised_) return;
  syncing_ = true;
  if (sim_.tracing()) {
    sim_.trace(to_string(self_) + " executed-log sync begins (" +
               std::string(reason) + ")");
  }
  sync_->begin();
}

void PbReplica::on_restart() {
  if (!active_ || !primary_ || compromised_) return;
  start_sync("restart");
}

RejoinStats PbReplica::rejoin_stats() const {
  RejoinStats s;
  s.rejoins = sync_->transfers_completed();
  s.failures = sync_->transfers_failed();
  s.retry_rounds = sync_->retry_rounds();
  s.max_catchup_s = sync_->max_catchup_s();
  return s;
}

void PbReplica::on_message(const Message& msg) {
  switch (msg.type) {
    case Message::Type::kRequest: {
      // A compromised SM is attacker-controlled: it forges results whether
      // or not it is the official primary (the client cannot tell).
      if (compromised_) {
        Message reply;
        reply.type = Message::Type::kReply;
        reply.request_id = msg.request_id;
        reply.value = -msg.request_id;  // forged result
        reply.corrupt = true;
        net_.send(self_, msg.sender, reply);
        return;
      }
      if (active_ && primary_ && !syncing_) {
        executed_.insert(msg.request_id);
        Message reply;
        reply.type = Message::Type::kReply;
        reply.request_id = msg.request_id;
        reply.value = msg.request_id;  // correct execution echoes the id
        net_.send(self_, msg.sender, reply);
      }
      return;
    }
    case Message::Type::kHeartbeat: {
      if (msg.sender.site == self_.site) last_heartbeat_ = sim_.now();
      return;
    }
    case Message::Type::kActivate: {
      // Ack unconditionally (idempotent) so the controller's retransmit
      // loop stops even when activation is already pending or complete.
      Message ack;
      ack.type = Message::Type::kActivateAck;
      ack.request_id = msg.request_id;
      net_.send(self_, msg.sender, ack);
      if (active_ || activation_pending_) return;
      activation_pending_ = true;
      if (sim_.tracing()) {
        sim_.trace(to_string(self_) + " cold site activation started");
      }
      sim_.schedule_in(options_.activation_delay_s, [this] {
        active_ = true;
        activation_pending_ = false;
        last_heartbeat_ = sim_.now();
        // become_primary syncs the executed log before the new site serves.
        if (self_.node == 0) become_primary();
        if (sim_.tracing()) {
          sim_.trace(to_string(self_) + " cold site activation complete");
        }
      });
      return;
    }
    case Message::Type::kStateRequest: {
      if (!active_ || compromised_) return;
      Message reply;
      reply.type = Message::Type::kStateReply;
      reply.request_id = msg.request_id;  // echo the sync epoch
      reply.seq = static_cast<std::int64_t>(executed_.size());
      reply.payload.assign(executed_.begin(), executed_.end());
      reply.value = state_digest(reply.payload);
      net_.send(self_, msg.sender, reply);
      return;
    }
    case Message::Type::kStateReply: {
      sync_->on_reply(msg);
      return;
    }
    default:
      return;  // BFT-only message types
  }
}

void PbReplica::heartbeat_loop() {
  if (active_ && primary_ && !compromised_) {
    Message hb;
    hb.type = Message::Type::kHeartbeat;
    net_.send_to_site(self_, self_.site, hb);
  }
  sim_.schedule_in(options_.heartbeat_interval_s, [this] { heartbeat_loop(); });
}

void PbReplica::watchdog_loop() {
  if (active_ && !primary_ &&
      sim_.now() - last_heartbeat_ >
          options_.heartbeat_timeout_s * timeout_scale_) {
    become_primary();
  }
  sim_.schedule_in(options_.heartbeat_interval_s, [this] { watchdog_loop(); });
}

FailoverController::FailoverController(Simulator& sim, Network& net,
                                       NodeAddr self,
                                       const ClientWorkload& workload,
                                       int backup_site, PbOptions options)
    : sim_(sim), net_(net), self_(self), workload_(workload),
      backup_site_(backup_site), options_(options) {
  net_.register_handler(self_, [this](const Message& msg) {
    if (msg.type == Message::Type::kActivateAck &&
        msg.sender.site == backup_site_) {
      const bool was_acked = activation_acked();
      acked_nodes_.insert(msg.sender.node);
      if (!was_acked && activation_acked() && sim_.tracing()) {
        sim_.trace("failover controller: backup site " +
                   std::to_string(backup_site_) +
                   " acked activation (all nodes)");
      }
    }
  });
}

bool FailoverController::activation_acked() const noexcept {
  return static_cast<int>(acked_nodes_.size()) >=
         net_.nodes_at(backup_site_);
}

void FailoverController::start(double start_s, double end_s) {
  start_s_ = start_s;
  end_s_ = end_s;
  sim_.schedule_at(start_s + options_.controller_check_interval_s,
                   [this] { check(); });
}

double FailoverController::last_success_time() const {
  double last = start_s_;
  for (const auto& r : workload_.records()) {
    if (r.completed_at >= 0.0 && !r.corrupt) {
      last = std::max(last, r.completed_at);
    }
  }
  return last;
}

void FailoverController::check() {
  if (sim_.now() >= end_s_) return;
  if (activation_attempts_ == 0 &&
      sim_.now() - last_success_time() > options_.controller_outage_threshold_s) {
    if (sim_.tracing()) {
      sim_.trace("failover controller activating backup site " +
                 std::to_string(backup_site_));
    }
    send_activate();
  }
  sim_.schedule_in(options_.controller_check_interval_s, [this] { check(); });
}

void FailoverController::send_activate() {
  // Activation is retransmitted on a capped backoff schedule until every
  // backup-site node acks: a partially delivered broadcast over a lossy
  // WAN can leave the backup group permanently below quorum.
  if (activation_acked() || sim_.now() >= end_s_) return;
  if (options_.activation_max_attempts > 0 &&
      activation_attempts_ >= options_.activation_max_attempts) {
    return;
  }
  ++activation_attempts_;
  Message activate;
  activate.type = Message::Type::kActivate;
  activate.request_id = activation_attempts_;
  net_.send_to_site(self_, backup_site_, activate);
  const double wait =
      options_.activation_retry.delay(activation_attempts_ - 1);
  sim_.schedule_in(wait, [this] { send_activate(); });
}

}  // namespace ct::sim
