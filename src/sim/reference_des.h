// Bit-identity oracle for the DES hot-path overhaul: the pre-overhaul
// engine (std::function events on a binary priority_queue, per-delivery
// Message copies, std::map/std::set protocol bookkeeping) kept verbatim in
// reference_des.cpp. ScadaDes::run_reference() routes through this engine;
// des_fastpath_test asserts every run() outcome equals the matching
// run_reference() outcome field-for-field across the chaos corpora, so any
// behavioural drift introduced by the pooled engine is caught immediately.
#pragma once

#include "scada/configuration.h"
#include "sim/scada_des.h"
#include "threat/system_state.h"

namespace ct::sim::refdes {

/// Runs one simulation on the reference engine. Mirrors
/// ScadaDes::run_impl exactly (pass plan = nullptr for a plain run); the
/// measurement-only DesOutcome fields are left zero for the caller.
DesOutcome run_reference_des(const scada::Configuration& config,
                             const DesOptions& options,
                             const threat::SystemState& attacked_state,
                             const FaultPlan* plan);

}  // namespace ct::sim::refdes
