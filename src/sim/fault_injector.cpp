#include "sim/fault_injector.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace ct::sim {

std::string_view fault_kind_name(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kLinkFlap: return "flap-link";
    case FaultKind::kSiteFlap: return "flap-site";
    case FaultKind::kSkew: return "skew";
    case FaultKind::kCompromise: return "compromise";
  }
  return "?";
}

bool FaultPlan::benign() const noexcept {
  for (const FaultEvent& e : events) {
    if (e.kind == FaultKind::kCompromise) return false;
  }
  return true;
}

std::vector<std::pair<double, double>> FaultPlan::excused_windows(
    double pad_s) const {
  std::vector<std::pair<double, double>> windows;
  for (const FaultEvent& e : events) {
    if (e.kind == FaultKind::kCrash || e.kind == FaultKind::kLinkFlap ||
        e.kind == FaultKind::kSiteFlap) {
      windows.emplace_back(e.at, e.at + e.duration + pad_s);
    }
  }
  std::sort(windows.begin(), windows.end());
  // Merge overlaps so callers can treat the result as disjoint intervals.
  std::vector<std::pair<double, double>> merged;
  for (const auto& w : windows) {
    if (!merged.empty() && w.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, w.second);
    } else {
      merged.push_back(w);
    }
  }
  return merged;
}

namespace {

std::string format_time(double t) {
  std::ostringstream out;
  out << t;
  return out.str();
}

NodeAddr parse_node(std::string_view token) {
  // "s<site>/n<node>", the to_string(NodeAddr) format.
  const std::size_t slash = token.find('/');
  if (token.size() < 4 || token[0] != 's' || slash == std::string_view::npos ||
      slash + 1 >= token.size() || token[slash + 1] != 'n') {
    throw std::invalid_argument("FaultPlan: bad node address '" +
                                std::string(token) + "'");
  }
  NodeAddr addr;
  addr.site = std::stoi(std::string(token.substr(1, slash - 1)));
  addr.node = std::stoi(std::string(token.substr(slash + 2)));
  return addr;
}

}  // namespace

std::string FaultPlan::to_schedule() const {
  std::ostringstream out;
  if (duplicate_probability > 0.0) {
    out << "dup " << duplicate_probability << "\n";
  }
  if (reorder_probability > 0.0) {
    out << "reorder " << reorder_probability << " " << reorder_window_s
        << "\n";
  }
  if (transfer_loss_probability > 0.0) {
    out << "xferloss " << transfer_loss_probability << "\n";
  }
  for (const FaultEvent& e : events) {
    out << fault_kind_name(e.kind) << " @" << format_time(e.at);
    switch (e.kind) {
      case FaultKind::kCrash:
        out << " " << to_string(e.node) << " +" << format_time(e.duration);
        break;
      case FaultKind::kLinkFlap:
        out << " " << e.site_a << "-" << e.site_b << " +"
            << format_time(e.duration);
        break;
      case FaultKind::kSiteFlap:
        out << " " << e.site_a << " +" << format_time(e.duration);
        break;
      case FaultKind::kSkew:
        out << " " << to_string(e.node) << " +" << format_time(e.duration)
            << " x" << e.factor;
        break;
      case FaultKind::kCompromise:
        out << " " << to_string(e.node);
        break;
    }
    out << "\n";
  }
  return out.str();
}

FaultPlan FaultPlan::parse_schedule(std::string_view text) {
  FaultPlan plan;
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    const std::string trimmed = std::string(util::trim(line));
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::istringstream fields(trimmed);
    std::string word;
    fields >> word;
    if (word == "dup") {
      if (!(fields >> plan.duplicate_probability)) {
        throw std::invalid_argument("FaultPlan: bad dup line: " + trimmed);
      }
      continue;
    }
    if (word == "reorder") {
      if (!(fields >> plan.reorder_probability >> plan.reorder_window_s)) {
        throw std::invalid_argument("FaultPlan: bad reorder line: " + trimmed);
      }
      continue;
    }
    if (word == "xferloss") {
      if (!(fields >> plan.transfer_loss_probability)) {
        throw std::invalid_argument("FaultPlan: bad xferloss line: " + trimmed);
      }
      continue;
    }
    FaultEvent e;
    if (word == "crash") {
      e.kind = FaultKind::kCrash;
    } else if (word == "flap-link") {
      e.kind = FaultKind::kLinkFlap;
    } else if (word == "flap-site") {
      e.kind = FaultKind::kSiteFlap;
    } else if (word == "skew") {
      e.kind = FaultKind::kSkew;
    } else if (word == "compromise") {
      e.kind = FaultKind::kCompromise;
    } else {
      throw std::invalid_argument("FaultPlan: unknown directive: " + trimmed);
    }
    std::string at_token;
    fields >> at_token;
    if (at_token.empty() || at_token[0] != '@') {
      throw std::invalid_argument("FaultPlan: missing @time: " + trimmed);
    }
    e.at = std::stod(at_token.substr(1));
    std::string rest;
    switch (e.kind) {
      case FaultKind::kCrash:
      case FaultKind::kSkew:
      case FaultKind::kCompromise: {
        fields >> rest;
        e.node = parse_node(rest);
        break;
      }
      case FaultKind::kLinkFlap: {
        fields >> rest;
        const std::size_t dash = rest.find('-');
        if (dash == std::string::npos) {
          throw std::invalid_argument("FaultPlan: bad link pair: " + trimmed);
        }
        e.site_a = std::stoi(rest.substr(0, dash));
        e.site_b = std::stoi(rest.substr(dash + 1));
        break;
      }
      case FaultKind::kSiteFlap: {
        fields >> e.site_a;
        break;
      }
    }
    // Optional "+duration" and "x<factor>" suffixes.
    while (fields >> rest) {
      if (rest[0] == '+') {
        e.duration = std::stod(rest.substr(1));
      } else if (rest[0] == 'x') {
        e.factor = std::stod(rest.substr(1));
      } else {
        throw std::invalid_argument("FaultPlan: bad suffix '" + rest +
                                    "': " + trimmed);
      }
    }
    plan.events.push_back(e);
  }
  return plan;
}

FaultPlan random_benign_plan(const BenignPlanShape& shape,
                             const std::vector<int>& nodes_per_site,
                             util::Rng& rng) {
  if (nodes_per_site.empty()) {
    throw std::invalid_argument("random_benign_plan: no sites");
  }
  if (shape.window_to_s <= shape.window_from_s) {
    throw std::invalid_argument("random_benign_plan: empty fault window");
  }
  FaultPlan plan;
  plan.duplicate_probability = shape.duplicate_probability;
  plan.reorder_probability = shape.reorder_probability;
  plan.reorder_window_s = shape.reorder_window_s;
  const int sites = static_cast<int>(nodes_per_site.size());

  const auto random_node = [&]() -> NodeAddr {
    const int site = static_cast<int>(rng.uniform_int(0, sites - 1));
    const int node = nodes_per_site[static_cast<std::size_t>(site)] > 0
                         ? static_cast<int>(rng.uniform_int(
                               0, nodes_per_site[static_cast<std::size_t>(
                                      site)] - 1))
                         : 0;
    return {site, node};
  };

  // Crash windows are laid out in disjoint time slots so at most one node
  // is ever down at a time — the strongest fault a correct stack must ride
  // through without a color change.
  const int crashes =
      static_cast<int>(rng.uniform_int(0, shape.max_crashes));
  if (crashes > 0) {
    const double slot =
        (shape.window_to_s - shape.window_from_s) / crashes;
    for (int i = 0; i < crashes; ++i) {
      FaultEvent e;
      e.kind = FaultKind::kCrash;
      e.duration = rng.uniform(1.0, shape.max_crash_duration_s);
      const double slack = std::max(0.0, slot - e.duration);
      e.at = shape.window_from_s + slot * i + rng.uniform(0.0, slack);
      e.node = random_node();
      plan.events.push_back(e);
    }
  }

  const int link_flaps =
      static_cast<int>(rng.uniform_int(0, shape.max_link_flaps));
  for (int i = 0; i < link_flaps && sites >= 1; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kLinkFlap;
    e.site_a = static_cast<int>(rng.uniform_int(0, sites - 1));
    // The peer may be the client site (index == sites): flapping the
    // service path briefly looks like a loss burst to the client.
    e.site_b = static_cast<int>(rng.uniform_int(0, sites));
    if (e.site_b == e.site_a) e.site_b = (e.site_a + 1) % (sites + 1);
    e.duration = rng.uniform(0.5, shape.max_link_flap_duration_s);
    e.at = rng.uniform(shape.window_from_s, shape.window_to_s);
    plan.events.push_back(e);
  }

  const int site_flaps =
      static_cast<int>(rng.uniform_int(0, shape.max_site_flaps));
  for (int i = 0; i < site_flaps; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kSiteFlap;
    e.site_a = static_cast<int>(rng.uniform_int(0, sites - 1));
    e.duration = rng.uniform(0.5, shape.max_site_flap_duration_s);
    e.at = rng.uniform(shape.window_from_s, shape.window_to_s);
    plan.events.push_back(e);
  }

  const int skews = static_cast<int>(rng.uniform_int(0, shape.max_skews));
  for (int i = 0; i < skews; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kSkew;
    e.node = random_node();
    e.factor = rng.uniform(shape.min_skew_factor, shape.max_skew_factor);
    e.at = rng.uniform(shape.window_from_s, shape.window_to_s);
    e.duration = rng.uniform(10.0, 60.0);
    plan.events.push_back(e);
  }

  std::sort(plan.events.begin(), plan.events.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return a.at < b.at;
            });
  return plan;
}

FaultPlan random_restart_plan(const RestartPlanShape& shape,
                              const std::vector<int>& nodes_per_site,
                              util::Rng& rng) {
  if (nodes_per_site.empty()) {
    throw std::invalid_argument("random_restart_plan: no sites");
  }
  if (shape.window_to_s <= shape.window_from_s) {
    throw std::invalid_argument("random_restart_plan: empty fault window");
  }
  if (shape.min_restarts < 1 || shape.max_restarts < shape.min_restarts ||
      shape.min_crash_duration_s <= 0.0 ||
      shape.max_crash_duration_s < shape.min_crash_duration_s) {
    throw std::invalid_argument("random_restart_plan: bad restart bounds");
  }
  FaultPlan plan;
  plan.duplicate_probability = shape.duplicate_probability;
  plan.reorder_probability = shape.reorder_probability;
  plan.reorder_window_s = shape.reorder_window_s;
  plan.transfer_loss_probability = shape.transfer_loss_probability;
  const int sites = static_cast<int>(nodes_per_site.size());

  const auto random_node = [&]() -> NodeAddr {
    const int site = static_cast<int>(rng.uniform_int(0, sites - 1));
    const int node = nodes_per_site[static_cast<std::size_t>(site)] > 0
                         ? static_cast<int>(rng.uniform_int(
                               0, nodes_per_site[static_cast<std::size_t>(
                                      site)] - 1))
                         : 0;
    return {site, node};
  };

  // Disjoint crash slots, like the benign generator, but every crash has a
  // strictly positive duration: each one ENDS inside the run, so every
  // event forces a restart and a rejoin catch-up.
  const int restarts = static_cast<int>(
      rng.uniform_int(shape.min_restarts, shape.max_restarts));
  const double slot = (shape.window_to_s - shape.window_from_s) / restarts;
  for (int i = 0; i < restarts; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kCrash;
    const double max_duration =
        std::min(shape.max_crash_duration_s, std::max(1.0, slot - 1.0));
    e.duration = rng.uniform(
        std::min(shape.min_crash_duration_s, max_duration), max_duration);
    const double slack = std::max(0.0, slot - e.duration);
    e.at = shape.window_from_s + slot * i + rng.uniform(0.0, slack);
    e.node = random_node();
    plan.events.push_back(e);
  }

  const int site_flaps =
      static_cast<int>(rng.uniform_int(0, shape.max_site_flaps));
  for (int i = 0; i < site_flaps; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kSiteFlap;
    e.site_a = static_cast<int>(rng.uniform_int(0, sites - 1));
    e.duration = rng.uniform(1.0, shape.max_site_flap_duration_s);
    e.at = rng.uniform(shape.window_from_s, shape.window_to_s);
    plan.events.push_back(e);
  }

  std::sort(plan.events.begin(), plan.events.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return a.at < b.at;
            });
  return plan;
}

FaultInjector::FaultInjector(Simulator& sim, Network& net, FaultPlan plan,
                             Hooks hooks)
    : sim_(sim), net_(net), plan_(std::move(plan)), hooks_(std::move(hooks)) {}

void FaultInjector::arm() {
  if (armed_) throw std::logic_error("FaultInjector: already armed");
  armed_ = true;
  for (const FaultEvent& e : plan_.events) {
    ++events_armed_;
    switch (e.kind) {
      case FaultKind::kCrash: {
        const NodeAddr node = e.node;
        sim_.schedule_at(e.at, [this, node] {
          net_.set_node_crashed(node, true);
          if (sim_.tracing()) {
            sim_.trace(to_string(node) + " CRASHED (fault plan)");
          }
        });
        if (e.duration > 0.0) {
          sim_.schedule_at(e.at + e.duration, [this, node] {
            net_.set_node_crashed(node, false);
            if (sim_.tracing()) {
              sim_.trace(to_string(node) + " restarted (fault plan)");
            }
            if (hooks_.restart) hooks_.restart(node);
          });
        }
        break;
      }
      case FaultKind::kLinkFlap: {
        const int a = e.site_a;
        const int b = e.site_b;
        sim_.schedule_at(e.at, [this, a, b] {
          net_.set_link_down(a, b, true);
          if (sim_.tracing()) {
            sim_.trace("link " + std::to_string(a) + "-" + std::to_string(b) +
                       " DOWN (fault plan)");
          }
        });
        if (e.duration > 0.0) {
          sim_.schedule_at(e.at + e.duration, [this, a, b] {
            net_.set_link_down(a, b, false);
            if (sim_.tracing()) {
              sim_.trace("link " + std::to_string(a) + "-" +
                         std::to_string(b) + " restored (fault plan)");
            }
          });
        }
        break;
      }
      case FaultKind::kSiteFlap: {
        const int site = e.site_a;
        // Restore to the pre-flap state so a flap scheduled against a site
        // that is already flooded does not resurrect it.
        sim_.schedule_at(e.at, [this, site, duration = e.duration] {
          const bool was_down = net_.site_down(site);
          net_.set_site_down(site, true);
          if (sim_.tracing()) {
            sim_.trace("site " + std::to_string(site) + " FLAPPED down");
          }
          if (duration > 0.0) {
            sim_.schedule_in(duration, [this, site, was_down] {
              net_.set_site_down(site, was_down);
              if (sim_.tracing()) {
                sim_.trace("site " + std::to_string(site) + " flap over");
              }
              // Every node of a bounced site restarts (unless the site was
              // already flooded and the flap changed nothing).
              if (!was_down && hooks_.restart) {
                for (int n = 0; n < net_.nodes_at(site); ++n) {
                  hooks_.restart({site, n});
                }
              }
            });
          }
        });
        break;
      }
      case FaultKind::kSkew: {
        if (!hooks_.set_timeout_scale) break;
        const NodeAddr node = e.node;
        const double factor = e.factor;
        sim_.schedule_at(e.at, [this, node, factor] {
          hooks_.set_timeout_scale(node, factor);
          if (sim_.tracing()) {
            sim_.trace(to_string(node) + " timeout skew x" +
                       std::to_string(factor));
          }
        });
        if (e.duration > 0.0) {
          sim_.schedule_at(e.at + e.duration, [this, node] {
            hooks_.set_timeout_scale(node, 1.0);
          });
        }
        break;
      }
      case FaultKind::kCompromise: {
        if (!hooks_.compromise) break;
        const NodeAddr node = e.node;
        sim_.schedule_at(e.at, [this, node] {
          hooks_.compromise(node);
          if (sim_.tracing()) {
            sim_.trace(to_string(node) + " COMPROMISED (fault plan)");
          }
        });
        break;
      }
    }
  }
}

}  // namespace ct::sim
