#include "sim/network.h"

#include <stdexcept>

namespace ct::sim {

std::string to_string(NodeAddr a) {
  return "s" + std::to_string(a.site) + "/n" + std::to_string(a.node);
}

std::string to_string(Message::Type t) {
  switch (t) {
    case Message::Type::kRequest: return "REQUEST";
    case Message::Type::kReply: return "REPLY";
    case Message::Type::kProposal: return "PROPOSAL";
    case Message::Type::kAccept: return "ACCEPT";
    case Message::Type::kHeartbeat: return "HEARTBEAT";
    case Message::Type::kActivate: return "ACTIVATE";
    case Message::Type::kViewChange: return "VIEW-CHANGE";
    case Message::Type::kActivateAck: return "ACTIVATE-ACK";
    case Message::Type::kCheckpoint: return "CHECKPOINT";
    case Message::Type::kStateRequest: return "STATE-REQUEST";
    case Message::Type::kStateReply: return "STATE-REPLY";
  }
  return "?";
}

bool is_control_message(Message::Type t) noexcept {
  switch (t) {
    case Message::Type::kActivate:
    case Message::Type::kActivateAck:
    case Message::Type::kCheckpoint:
    case Message::Type::kStateRequest:
    case Message::Type::kStateReply:
      return true;
    default:
      return false;
  }
}

Network::Network(Simulator& sim, std::vector<int> nodes_per_site,
                 NetworkOptions options)
    : sim_(sim), nodes_per_site_(std::move(nodes_per_site)), options_(options),
      impairment_rng_(options.impairment_seed, "network-impairment") {
  if (options_.loss_probability < 0.0 || options_.loss_probability >= 1.0) {
    throw std::invalid_argument("Network: loss probability must be in [0, 1)");
  }
  if (options_.latency_jitter_s < 0.0) {
    throw std::invalid_argument("Network: negative jitter");
  }
  if (options_.duplicate_probability < 0.0 ||
      options_.duplicate_probability >= 1.0) {
    throw std::invalid_argument(
        "Network: duplicate probability must be in [0, 1)");
  }
  if (options_.reorder_probability < 0.0 ||
      options_.reorder_probability >= 1.0 || options_.reorder_window_s < 0.0) {
    throw std::invalid_argument("Network: bad reordering parameters");
  }
  if (options_.control_loss_probability < 0.0 ||
      options_.control_loss_probability > 1.0) {
    throw std::invalid_argument(
        "Network: control loss probability must be in [0, 1]");
  }
  if (nodes_per_site_.empty()) {
    throw std::invalid_argument("Network: need at least one site");
  }
  std::size_t total = 0;
  for (const int n : nodes_per_site_) {
    if (n < 0) throw std::invalid_argument("Network: negative node count");
    offsets_.push_back(total);
    total += static_cast<std::size_t>(n);
  }
  handlers_.resize(total);
  down_.assign(nodes_per_site_.size(), false);
  isolated_.assign(nodes_per_site_.size(), false);
  crashed_.assign(total, false);
  link_down_.assign(nodes_per_site_.size() * nodes_per_site_.size(), false);
}

void Network::check_addr(NodeAddr a) const {
  if (a.site < 0 || a.site >= site_count() || a.node < 0 ||
      a.node >= nodes_at(a.site)) {
    throw std::out_of_range("Network: bad address " + to_string(a));
  }
}

std::size_t Network::flat_index(NodeAddr a) const {
  check_addr(a);
  return offsets_[static_cast<std::size_t>(a.site)] +
         static_cast<std::size_t>(a.node);
}

void Network::register_handler(NodeAddr addr, Handler handler) {
  handlers_[flat_index(addr)] = std::move(handler);
}

void Network::set_site_down(int site, bool down) {
  down_.at(static_cast<std::size_t>(site)) = down;
}

void Network::set_site_isolated(int site, bool isolated) {
  isolated_.at(static_cast<std::size_t>(site)) = isolated;
}

bool Network::site_down(int site) const {
  return down_.at(static_cast<std::size_t>(site));
}

bool Network::site_isolated(int site) const {
  return isolated_.at(static_cast<std::size_t>(site));
}

void Network::set_node_crashed(NodeAddr addr, bool crashed) {
  crashed_[flat_index(addr)] = crashed;
}

bool Network::node_crashed(NodeAddr addr) const {
  return crashed_[flat_index(addr)];
}

void Network::set_link_down(int site_a, int site_b, bool down) {
  if (site_a < 0 || site_a >= site_count() || site_b < 0 ||
      site_b >= site_count()) {
    throw std::out_of_range("Network: bad link site index");
  }
  const auto n = static_cast<std::size_t>(site_count());
  link_down_[static_cast<std::size_t>(site_a) * n +
             static_cast<std::size_t>(site_b)] = down;
  link_down_[static_cast<std::size_t>(site_b) * n +
             static_cast<std::size_t>(site_a)] = down;
}

bool Network::link_down(int site_a, int site_b) const {
  if (site_a < 0 || site_a >= site_count() || site_b < 0 ||
      site_b >= site_count()) {
    throw std::out_of_range("Network: bad link site index");
  }
  return link_down_[static_cast<std::size_t>(site_a) *
                        static_cast<std::size_t>(site_count()) +
                    static_cast<std::size_t>(site_b)];
}

bool Network::can_communicate(NodeAddr from, NodeAddr to) const {
  check_addr(from);
  check_addr(to);
  if (node_crashed(from) || node_crashed(to)) return false;
  if (site_down(from.site) || site_down(to.site)) return false;
  if (from.site != to.site &&
      (site_isolated(from.site) || site_isolated(to.site))) {
    return false;
  }
  if (from.site != to.site && link_down(from.site, to.site)) return false;
  return true;
}

void Network::deliver(NodeAddr to, const Message& msg, double latency) {
  sim_.schedule_in(latency, [this, to, msg] {
    // Re-check destination health at delivery time: packets in flight to a
    // site that just flooded, got cut off, or whose node crashed are lost.
    if (site_down(to.site) || node_crashed(to)) {
      ++drops_.in_flight;
      return;
    }
    if (msg.sender.site != to.site &&
        (site_isolated(to.site) || site_isolated(msg.sender.site) ||
         link_down(msg.sender.site, to.site))) {
      ++drops_.in_flight;
      return;
    }
    const Handler& h = handlers_[flat_index(to)];
    if (h) {
      ++delivered_;
      h(msg);
    }
  });
}

void Network::send(NodeAddr from, NodeAddr to, Message msg) {
  ++sent_;
  check_addr(from);
  check_addr(to);
  // Classify send-time blocks by cause (first matching cause wins).
  if (node_crashed(from) || node_crashed(to)) {
    ++drops_.crashed;
    return;
  }
  if (site_down(from.site) || site_down(to.site)) {
    ++drops_.site_down;
    return;
  }
  if (from.site != to.site &&
      (site_isolated(from.site) || site_isolated(to.site))) {
    ++drops_.isolation;
    return;
  }
  if (from.site != to.site && link_down(from.site, to.site)) {
    ++drops_.link_down;
    return;
  }
  if (options_.loss_probability > 0.0 &&
      impairment_rng_.bernoulli(options_.loss_probability)) {
    ++drops_.loss;
    return;
  }
  if (options_.control_loss_probability > 0.0 && is_control_message(msg.type) &&
      impairment_rng_.bernoulli(options_.control_loss_probability)) {
    ++drops_.transfer_loss;
    return;
  }
  msg.sender = from;
  const auto draw_latency = [&] {
    double latency = from.site == to.site ? options_.intra_site_latency_s
                                          : options_.inter_site_latency_s;
    if (options_.latency_jitter_s > 0.0) {
      latency += impairment_rng_.uniform(0.0, options_.latency_jitter_s);
    }
    if (options_.reorder_probability > 0.0 &&
        impairment_rng_.bernoulli(options_.reorder_probability)) {
      // Holding a message back lets traffic sent later overtake it.
      latency += impairment_rng_.uniform(0.0, options_.reorder_window_s);
    }
    return latency;
  };
  deliver(to, msg, draw_latency());
  if (options_.duplicate_probability > 0.0 &&
      impairment_rng_.bernoulli(options_.duplicate_probability)) {
    ++duplicated_;
    deliver(to, msg, draw_latency());
  }
}

void Network::broadcast(NodeAddr from, Message msg) {
  for (int s = 0; s < site_count(); ++s) {
    for (int n = 0; n < nodes_at(s); ++n) {
      const NodeAddr to{s, n};
      if (to == from) continue;
      send(from, to, msg);
    }
  }
}

void Network::send_to_site(NodeAddr from, int site, Message msg) {
  for (int n = 0; n < nodes_at(site); ++n) {
    const NodeAddr to{site, n};
    if (to == from) continue;
    send(from, to, msg);
  }
}

}  // namespace ct::sim
