#include "sim/network.h"

#include <stdexcept>

namespace ct::sim {

std::string to_string(NodeAddr a) {
  return "s" + std::to_string(a.site) + "/n" + std::to_string(a.node);
}

std::string to_string(Message::Type t) {
  switch (t) {
    case Message::Type::kRequest: return "REQUEST";
    case Message::Type::kReply: return "REPLY";
    case Message::Type::kProposal: return "PROPOSAL";
    case Message::Type::kAccept: return "ACCEPT";
    case Message::Type::kHeartbeat: return "HEARTBEAT";
    case Message::Type::kActivate: return "ACTIVATE";
    case Message::Type::kViewChange: return "VIEW-CHANGE";
    case Message::Type::kActivateAck: return "ACTIVATE-ACK";
    case Message::Type::kCheckpoint: return "CHECKPOINT";
    case Message::Type::kStateRequest: return "STATE-REQUEST";
    case Message::Type::kStateReply: return "STATE-REPLY";
  }
  return "?";
}

bool is_control_message(Message::Type t) noexcept {
  switch (t) {
    case Message::Type::kActivate:
    case Message::Type::kActivateAck:
    case Message::Type::kCheckpoint:
    case Message::Type::kStateRequest:
    case Message::Type::kStateReply:
      return true;
    default:
      return false;
  }
}

Network::Network(Simulator& sim, std::vector<int> nodes_per_site,
                 NetworkOptions options)
    : sim_(sim), impairment_rng_(options.impairment_seed, "network-impairment") {
  configure(std::move(nodes_per_site), options);
}

void Network::configure(std::vector<int> nodes_per_site,
                        NetworkOptions options) {
  nodes_per_site_ = std::move(nodes_per_site);
  options_ = options;
  if (options_.loss_probability < 0.0 || options_.loss_probability >= 1.0) {
    throw std::invalid_argument("Network: loss probability must be in [0, 1)");
  }
  if (options_.latency_jitter_s < 0.0) {
    throw std::invalid_argument("Network: negative jitter");
  }
  if (options_.duplicate_probability < 0.0 ||
      options_.duplicate_probability >= 1.0) {
    throw std::invalid_argument(
        "Network: duplicate probability must be in [0, 1)");
  }
  if (options_.reorder_probability < 0.0 ||
      options_.reorder_probability >= 1.0 || options_.reorder_window_s < 0.0) {
    throw std::invalid_argument("Network: bad reordering parameters");
  }
  if (options_.control_loss_probability < 0.0 ||
      options_.control_loss_probability > 1.0) {
    throw std::invalid_argument(
        "Network: control loss probability must be in [0, 1]");
  }
  if (nodes_per_site_.empty()) {
    throw std::invalid_argument("Network: need at least one site");
  }
  offsets_.clear();
  std::size_t total = 0;
  for (const int n : nodes_per_site_) {
    if (n < 0) throw std::invalid_argument("Network: negative node count");
    offsets_.push_back(total);
    total += static_cast<std::size_t>(n);
  }
  handlers_.assign(total, Handler{});
  down_.assign(nodes_per_site_.size(), 0);
  isolated_.assign(nodes_per_site_.size(), 0);
  crashed_.assign(total, 0);
  link_down_.assign(nodes_per_site_.size() * nodes_per_site_.size(), 0);
  node_block_.assign(total, 0);
  cross_block_.assign(nodes_per_site_.size() * nodes_per_site_.size(), 0);
  impairments_ = options_.loss_probability > 0.0 ||
                 options_.control_loss_probability > 0.0 ||
                 options_.latency_jitter_s > 0.0 ||
                 options_.duplicate_probability > 0.0 ||
                 options_.reorder_probability > 0.0;
}

void Network::refresh_blocks() {
  const std::size_t sites = nodes_per_site_.size();
  for (std::size_t s = 0; s < sites; ++s) {
    for (int n = 0; n < nodes_per_site_[s]; ++n) {
      const std::size_t f = offsets_[s] + static_cast<std::size_t>(n);
      node_block_[f] = (crashed_[f] | down_[s]) != 0 ? 1 : 0;
    }
  }
  for (std::size_t a = 0; a < sites; ++a) {
    for (std::size_t b = 0; b < sites; ++b) {
      cross_block_[a * sites + b] =
          a != b && (isolated_[a] | isolated_[b] |
                     link_down_[a * sites + b]) != 0
              ? 1
              : 0;
    }
  }
}

void Network::reset(std::vector<int> nodes_per_site, NetworkOptions options) {
  configure(std::move(nodes_per_site), options);
  impairment_rng_ = util::Rng(options_.impairment_seed, "network-impairment");
  sent_ = 0;
  delivered_ = 0;
  duplicated_ = 0;
  drops_ = DropCounters{};
  pool_ = PoolStats{};
  // Every in-flight delivery was dropped with the simulator's event queue
  // (reset() here requires Simulator::reset() first), so all slots return
  // to the freelist with payload capacity kept warm.
  free_slots_.clear();
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    slots_[i].refs = 0;
    slots_[i].msg.payload.clear();
    free_slots_.push_back(static_cast<std::uint32_t>(slots_.size()) - 1 - i);
  }
}

void Network::check_addr(NodeAddr a) const {
  if (a.site < 0 || a.site >= site_count() || a.node < 0 ||
      a.node >= nodes_per_site_[static_cast<std::size_t>(a.site)]) {
    throw std::out_of_range("Network: bad address " + to_string(a));
  }
}

std::size_t Network::flat_index(NodeAddr a) const {
  check_addr(a);
  return offsets_[static_cast<std::size_t>(a.site)] +
         static_cast<std::size_t>(a.node);
}

void Network::register_handler(NodeAddr addr, Handler handler) {
  handlers_[flat_index(addr)] = std::move(handler);
}

void Network::set_site_down(int site, bool down) {
  down_.at(static_cast<std::size_t>(site)) = down ? 1 : 0;
  refresh_blocks();
}

void Network::set_site_isolated(int site, bool isolated) {
  isolated_.at(static_cast<std::size_t>(site)) = isolated ? 1 : 0;
  refresh_blocks();
}

bool Network::site_down(int site) const {
  return down_.at(static_cast<std::size_t>(site)) != 0;
}

bool Network::site_isolated(int site) const {
  return isolated_.at(static_cast<std::size_t>(site)) != 0;
}

void Network::set_node_crashed(NodeAddr addr, bool crashed) {
  crashed_[flat_index(addr)] = crashed ? 1 : 0;
  refresh_blocks();
}

bool Network::node_crashed(NodeAddr addr) const {
  return crashed_[flat_index(addr)];
}

void Network::set_link_down(int site_a, int site_b, bool down) {
  if (site_a < 0 || site_a >= site_count() || site_b < 0 ||
      site_b >= site_count()) {
    throw std::out_of_range("Network: bad link site index");
  }
  const auto n = static_cast<std::size_t>(site_count());
  link_down_[static_cast<std::size_t>(site_a) * n +
             static_cast<std::size_t>(site_b)] = down ? 1 : 0;
  link_down_[static_cast<std::size_t>(site_b) * n +
             static_cast<std::size_t>(site_a)] = down ? 1 : 0;
  refresh_blocks();
}

bool Network::link_down(int site_a, int site_b) const {
  if (site_a < 0 || site_a >= site_count() || site_b < 0 ||
      site_b >= site_count()) {
    throw std::out_of_range("Network: bad link site index");
  }
  return link_down_[static_cast<std::size_t>(site_a) *
                        static_cast<std::size_t>(site_count()) +
                    static_cast<std::size_t>(site_b)];
}

bool Network::can_communicate(NodeAddr from, NodeAddr to) const {
  check_addr(from);
  check_addr(to);
  if (node_crashed(from) || node_crashed(to)) return false;
  if (site_down(from.site) || site_down(to.site)) return false;
  if (from.site != to.site &&
      (site_isolated(from.site) || site_isolated(to.site))) {
    return false;
  }
  if (from.site != to.site && link_down(from.site, to.site)) return false;
  return true;
}

std::uint32_t Network::materialize(NodeAddr from, const Message& msg) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    ++pool_.pool_hits;
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    ++pool_.pool_misses;
  }
  Message& m = slots_[slot].msg;
  m.type = msg.type;
  m.sender = from;
  m.request_id = msg.request_id;
  m.seq = msg.seq;
  m.view = msg.view;
  m.value = msg.value;
  m.corrupt = msg.corrupt;
  m.payload.assign(msg.payload.begin(), msg.payload.end());
  ++pool_.materializations;
  return slot;
}

void Network::release(std::uint32_t slot) {
  Slot& s = slots_[slot];
  if (--s.refs == 0) {
    s.msg.payload.clear();  // keeps capacity for the next occupant
    free_slots_.push_back(slot);
  }
}

void Network::deliver(NodeAddr to, std::uint32_t to_flat, std::uint32_t slot,
                      double latency) {
  ++slots_[slot].refs;
  const int to_site = to.site;
  sim_.schedule_in(latency, [this, to_site, to_flat, slot] {
    // Re-check destination health at delivery time: packets in flight to a
    // site that just flooded, got cut off, or whose node crashed are lost.
    if (node_block_[to_flat] != 0) {
      ++drops_.in_flight;
      release(slot);
      return;
    }
    const Message& msg = slots_[slot].msg;
    if (msg.sender.site != to_site &&
        cross_block_[site_pair(msg.sender.site, to_site)] != 0) {
      ++drops_.in_flight;
      release(slot);
      return;
    }
    const Handler& h = handlers_[to_flat];
    if (h) {
      ++delivered_;
      // The slot stays referenced (and address-stable in the deque) for
      // the duration of the handler, even if the handler sends and grows
      // the pool re-entrantly.
      h(msg);
    }
    release(slot);
  });
}

void Network::classify_send_drop(NodeAddr from, NodeAddr to) {
  // Legacy cause priority: crashed > site down > isolation > link.
  if (node_crashed(from) || node_crashed(to)) {
    ++drops_.crashed;
  } else if (site_down(from.site) || site_down(to.site)) {
    ++drops_.site_down;
  } else if (from.site != to.site &&
             (site_isolated(from.site) || site_isolated(to.site))) {
    ++drops_.isolation;
  } else {
    ++drops_.link_down;
  }
}

void Network::send_pooled(NodeAddr from, NodeAddr to, const Message& msg,
                          std::uint32_t* slot) {
  ++sent_;
  check_addr(from);
  check_addr(to);
  const auto from_flat = static_cast<std::uint32_t>(
      offsets_[static_cast<std::size_t>(from.site)] +
      static_cast<std::size_t>(from.node));
  const auto to_flat = static_cast<std::uint32_t>(
      offsets_[static_cast<std::size_t>(to.site)] +
      static_cast<std::size_t>(to.node));
  if ((node_block_[from_flat] | node_block_[to_flat]) != 0) {
    classify_send_drop(from, to);
    return;
  }
  if (from.site != to.site && cross_block_[site_pair(from.site, to.site)] != 0) {
    classify_send_drop(from, to);
    return;
  }
  if (!impairments_) {
    // No probabilistic impairment armed: no RNG draw, constant latency.
    if (*slot == kNoSlot) *slot = materialize(from, msg);
    deliver(to, to_flat, *slot,
            from.site == to.site ? options_.intra_site_latency_s
                                 : options_.inter_site_latency_s);
    return;
  }
  if (options_.loss_probability > 0.0 &&
      impairment_rng_.bernoulli(options_.loss_probability)) {
    ++drops_.loss;
    return;
  }
  if (options_.control_loss_probability > 0.0 && is_control_message(msg.type) &&
      impairment_rng_.bernoulli(options_.control_loss_probability)) {
    ++drops_.transfer_loss;
    return;
  }
  if (*slot == kNoSlot) *slot = materialize(from, msg);
  const auto draw_latency = [&] {
    double latency = from.site == to.site ? options_.intra_site_latency_s
                                          : options_.inter_site_latency_s;
    if (options_.latency_jitter_s > 0.0) {
      latency += impairment_rng_.uniform(0.0, options_.latency_jitter_s);
    }
    if (options_.reorder_probability > 0.0 &&
        impairment_rng_.bernoulli(options_.reorder_probability)) {
      // Holding a message back lets traffic sent later overtake it.
      latency += impairment_rng_.uniform(0.0, options_.reorder_window_s);
    }
    return latency;
  };
  deliver(to, to_flat, *slot, draw_latency());
  if (options_.duplicate_probability > 0.0 &&
      impairment_rng_.bernoulli(options_.duplicate_probability)) {
    ++duplicated_;
    deliver(to, to_flat, *slot, draw_latency());
  }
}

void Network::send(NodeAddr from, NodeAddr to, const Message& msg) {
  std::uint32_t slot = kNoSlot;
  send_pooled(from, to, msg, &slot);
}

void Network::broadcast(NodeAddr from, const Message& msg) {
  std::uint32_t slot = kNoSlot;  // one materialization shared by all targets
  for (int s = 0; s < site_count(); ++s) {
    for (int n = 0; n < nodes_at(s); ++n) {
      const NodeAddr to{s, n};
      if (to == from) continue;
      send_pooled(from, to, msg, &slot);
    }
  }
}

void Network::send_group(NodeAddr from, const std::vector<NodeAddr>& targets,
                         const Message& msg) {
  std::uint32_t slot = kNoSlot;
  for (const NodeAddr to : targets) {
    if (to == from) continue;
    send_pooled(from, to, msg, &slot);
  }
}

void Network::send_to_site(NodeAddr from, int site, const Message& msg) {
  std::uint32_t slot = kNoSlot;
  for (int n = 0; n < nodes_at(site); ++n) {
    const NodeAddr to{site, n};
    if (to == from) continue;
    send_pooled(from, to, msg, &slot);
  }
}

}  // namespace ct::sim
