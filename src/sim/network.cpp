#include "sim/network.h"

#include <stdexcept>

namespace ct::sim {

std::string to_string(NodeAddr a) {
  return "s" + std::to_string(a.site) + "/n" + std::to_string(a.node);
}

std::string to_string(Message::Type t) {
  switch (t) {
    case Message::Type::kRequest: return "REQUEST";
    case Message::Type::kReply: return "REPLY";
    case Message::Type::kProposal: return "PROPOSAL";
    case Message::Type::kAccept: return "ACCEPT";
    case Message::Type::kHeartbeat: return "HEARTBEAT";
    case Message::Type::kActivate: return "ACTIVATE";
    case Message::Type::kViewChange: return "VIEW-CHANGE";
  }
  return "?";
}

Network::Network(Simulator& sim, std::vector<int> nodes_per_site,
                 NetworkOptions options)
    : sim_(sim), nodes_per_site_(std::move(nodes_per_site)), options_(options),
      impairment_rng_(options.impairment_seed, "network-impairment") {
  if (options_.loss_probability < 0.0 || options_.loss_probability >= 1.0) {
    throw std::invalid_argument("Network: loss probability must be in [0, 1)");
  }
  if (options_.latency_jitter_s < 0.0) {
    throw std::invalid_argument("Network: negative jitter");
  }
  if (nodes_per_site_.empty()) {
    throw std::invalid_argument("Network: need at least one site");
  }
  std::size_t total = 0;
  for (const int n : nodes_per_site_) {
    if (n < 0) throw std::invalid_argument("Network: negative node count");
    offsets_.push_back(total);
    total += static_cast<std::size_t>(n);
  }
  handlers_.resize(total);
  down_.assign(nodes_per_site_.size(), false);
  isolated_.assign(nodes_per_site_.size(), false);
}

void Network::check_addr(NodeAddr a) const {
  if (a.site < 0 || a.site >= site_count() || a.node < 0 ||
      a.node >= nodes_at(a.site)) {
    throw std::out_of_range("Network: bad address " + to_string(a));
  }
}

std::size_t Network::flat_index(NodeAddr a) const {
  check_addr(a);
  return offsets_[static_cast<std::size_t>(a.site)] +
         static_cast<std::size_t>(a.node);
}

void Network::register_handler(NodeAddr addr, Handler handler) {
  handlers_[flat_index(addr)] = std::move(handler);
}

void Network::set_site_down(int site, bool down) {
  down_.at(static_cast<std::size_t>(site)) = down;
}

void Network::set_site_isolated(int site, bool isolated) {
  isolated_.at(static_cast<std::size_t>(site)) = isolated;
}

bool Network::site_down(int site) const {
  return down_.at(static_cast<std::size_t>(site));
}

bool Network::site_isolated(int site) const {
  return isolated_.at(static_cast<std::size_t>(site));
}

bool Network::can_communicate(NodeAddr from, NodeAddr to) const {
  check_addr(from);
  check_addr(to);
  if (site_down(from.site) || site_down(to.site)) return false;
  if (from.site != to.site &&
      (site_isolated(from.site) || site_isolated(to.site))) {
    return false;
  }
  return true;
}

void Network::send(NodeAddr from, NodeAddr to, Message msg) {
  ++sent_;
  if (!can_communicate(from, to)) return;
  if (options_.loss_probability > 0.0 &&
      impairment_rng_.bernoulli(options_.loss_probability)) {
    ++dropped_;
    return;
  }
  msg.sender = from;
  double latency = from.site == to.site ? options_.intra_site_latency_s
                                        : options_.inter_site_latency_s;
  if (options_.latency_jitter_s > 0.0) {
    latency += impairment_rng_.uniform(0.0, options_.latency_jitter_s);
  }
  sim_.schedule_in(latency, [this, to, msg] {
    // Re-check destination health at delivery time: packets in flight to a
    // site that just flooded or got cut off are lost.
    if (site_down(to.site)) return;
    if (msg.sender.site != to.site &&
        (site_isolated(to.site) || site_isolated(msg.sender.site))) {
      return;
    }
    const Handler& h = handlers_[flat_index(to)];
    if (h) {
      ++delivered_;
      h(msg);
    }
  });
}

void Network::broadcast(NodeAddr from, Message msg) {
  for (int s = 0; s < site_count(); ++s) {
    for (int n = 0; n < nodes_at(s); ++n) {
      const NodeAddr to{s, n};
      if (to == from) continue;
      send(from, to, msg);
    }
  }
}

void Network::send_to_site(NodeAddr from, int site, Message msg) {
  for (int n = 0; n < nodes_at(site); ++n) {
    const NodeAddr to{site, n};
    if (to == from) continue;
    send(from, to, msg);
  }
}

}  // namespace ct::sim
