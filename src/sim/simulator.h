// Discrete-event simulation engine: a time-ordered event queue with
// deterministic FIFO tie-breaking, plus an optional trace log. Drives the
// SCADA protocol simulations that validate the analytic Table-I
// classification from protocol behaviour.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

namespace ct::sim {

/// Simulated time in seconds.
using SimTime = double;

class Simulator {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` to run at absolute time `t` (must be >= now()).
  /// Events scheduled for the same instant run in scheduling order.
  void schedule_at(SimTime t, Action action);
  /// Schedules `action` `delay` seconds from now.
  void schedule_in(SimTime delay, Action action);

  /// Runs events until the queue is empty or the next event is after
  /// `end_time`; `now()` ends at `end_time`.
  void run_until(SimTime end_time);

  SimTime now() const noexcept { return now_; }
  std::uint64_t events_processed() const noexcept { return processed_; }

  /// Safety valve: run_until stops once this many events have been
  /// processed in total (0 = unlimited). Guards against protocol storms
  /// consuming unbounded memory; `event_limit_hit()` reports whether a run
  /// was truncated.
  void set_event_limit(std::uint64_t limit) noexcept { event_limit_ = limit; }
  bool event_limit_hit() const noexcept { return limit_hit_; }

  /// Trace log: cheap structured breadcrumbs ("who did what when") used by
  /// the des_replay example. Disabled by default.
  void set_tracing(bool enabled) noexcept { tracing_ = enabled; }
  bool tracing() const noexcept { return tracing_; }
  void trace(const std::string& line);
  const std::vector<std::string>& trace_log() const noexcept { return trace_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // FIFO tie-break
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t event_limit_ = 0;
  bool limit_hit_ = false;
  bool tracing_ = false;
  std::vector<std::string> trace_;
};

}  // namespace ct::sim
