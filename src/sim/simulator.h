// Discrete-event simulation engine: a time-ordered event queue with
// deterministic FIFO tie-breaking, plus an optional trace log. Drives the
// SCADA protocol simulations that validate the analytic Table-I
// classification from protocol behaviour.
//
// Hot-path layout: events live in a slab of small-buffer-optimized
// callables (EventFn) recycled through a freelist. The ready queue is a
// timer wheel: ~1 ms buckets over an 8 s window, each bucket a tiny
// binary min-heap of 16-byte {time, seq|slot} entries, with an occupancy
// bitmap for cursor advance and a 4-ary overflow heap for events beyond
// the window. Nearly every DES event is scheduled a couple of
// milliseconds ahead, so push and pop are O(1) amortized instead of the
// O(log n) sift of a global heap — the dominant cost at realistic queue
// depths (~1200 pending). Ordering is exactly (time, seq): buckets drain
// in tick order and each bucket orders by the packed (seq, slot) word, so
// the wheel is observably identical to a single sorted queue. A
// steady-state event — one whose handler schedules a successor — performs
// zero heap allocations: the successor reuses the slot the current event
// just freed. sim/reference_des.{h,cpp} keeps a verbatim copy of the
// pre-pool engine as the bit-identity oracle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace ct::sim {

/// Simulated time in seconds.
using SimTime = double;

/// Move-only type-erased callable with a 64-byte inline buffer. The DES
/// schedules lambdas whose captures are almost always a few pointers
/// (<= 24 bytes); the largest in-tree capture (the scada_des attack
/// closure) is ~57 bytes. Anything that fits is stored inline — no heap —
/// and larger captures fall back to new/delete and are counted so the
/// fast-path tests can assert the fallback stays off the steady path.
class EventFn {
 public:
  static constexpr std::size_t kInlineCapacity = 64;

  EventFn() noexcept = default;
  EventFn(std::nullptr_t) noexcept {}

  template <class F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
             std::is_invocable_v<std::remove_cvref_t<F>&>)
  EventFn(F&& f) {
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &heap_ops<Fn>;
      ++heap_allocations_;
    }
  }

  EventFn(EventFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.storage_, storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  /// Invokes the callable and destroys it in one virtual dispatch — the
  /// dispatch loop's last touch of an event. Leaves this EventFn empty.
  /// If the callable throws, it stays constructed and the destructor
  /// cleans it up during unwinding.
  void consume() {
    ops_->consume(storage_);
    ops_ = nullptr;
  }

  /// Constructs a callable directly in this object (destroying any current
  /// occupant) — lets the scheduler build events in their slab slot with
  /// no intermediate move.
  template <class F>
    requires(std::is_invocable_v<std::remove_cvref_t<F>&>)
  void emplace(F&& f) {
    reset();
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &heap_ops<Fn>;
      ++heap_allocations_;
    }
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  /// Process-wide count of heap-fallback constructions (captures too large
  /// for the inline buffer). Monotonic; used by pool-stats assertions.
  static std::uint64_t heap_allocations() noexcept { return heap_allocations_; }

 private:
  struct Ops {
    void (*invoke)(void* src);
    void (*relocate)(void* src, void* dst) noexcept;  // move + destroy src
    void (*destroy)(void* src) noexcept;
    void (*consume)(void* src);  // invoke, then destroy
  };

  template <class Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineCapacity &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <class Fn>
  static constexpr Ops inline_ops = {
      [](void* src) { (*std::launder(reinterpret_cast<Fn*>(src)))(); },
      [](void* src, void* dst) noexcept {
        Fn* f = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*f));
        f->~Fn();
      },
      [](void* src) noexcept {
        std::launder(reinterpret_cast<Fn*>(src))->~Fn();
      },
      [](void* src) {
        Fn* f = std::launder(reinterpret_cast<Fn*>(src));
        (*f)();
        f->~Fn();
      },
  };

  template <class Fn>
  static constexpr Ops heap_ops = {
      [](void* src) { (**std::launder(reinterpret_cast<Fn**>(src)))(); },
      [](void* src, void* dst) noexcept {
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](void* src) noexcept {
        delete *std::launder(reinterpret_cast<Fn**>(src));
      },
      [](void* src) {
        Fn* f = *std::launder(reinterpret_cast<Fn**>(src));
        (*f)();
        delete f;
      },
  };

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;

  static inline std::uint64_t heap_allocations_ = 0;
};

class Simulator {
 public:
  /// Occupancy and recycling statistics for the event pool. A warmed
  /// simulator that is reset() and re-run over the same workload must show
  /// slab_grows == 0 — the zero-allocation steady-state guarantee.
  struct PoolStats {
    std::size_t slab_capacity = 0;  ///< total event slots ever created
    std::uint64_t slab_grows = 0;   ///< slot creations this run
    std::uint64_t peak_queue = 0;   ///< max simultaneously pending events
  };

  /// Schedules `action` to run at absolute time `t` (must be >= now()).
  /// Events scheduled for the same instant run in scheduling order.
  /// Throws std::invalid_argument on a past timestamp or null callable.
  template <class F>
  void schedule_at(SimTime t, F&& action) {
    if (t < now_) {
      throw std::invalid_argument("Simulator: cannot schedule in the past");
    }
    if constexpr (std::is_constructible_v<bool,
                                          const std::remove_cvref_t<F>&>) {
      if (!static_cast<bool>(action)) {
        throw std::invalid_argument("Simulator: null action");
      }
    }
    if constexpr (std::is_invocable_v<std::remove_cvref_t<F>&>) {
      const std::uint32_t slot = alloc_slot();
      slab_[slot].emplace(std::forward<F>(action));
      enqueue(t, slot);
    } else {
      // Only reachable with a never-callable argument (e.g. nullptr).
      throw std::invalid_argument("Simulator: null action");
    }
  }

  /// Schedules `action` `delay` seconds from now.
  template <class F>
  void schedule_in(SimTime delay, F&& action) {
    schedule_at(now_ + delay, std::forward<F>(action));
  }

  /// Runs events until the queue is empty or the next event is after
  /// `end_time`; `now()` ends at `end_time`.
  void run_until(SimTime end_time);

  SimTime now() const noexcept { return now_; }
  std::uint64_t events_processed() const noexcept { return processed_; }
  std::size_t pending_events() const noexcept { return pending_; }

  /// Safety valve: run_until stops once this many events have been
  /// processed in total (0 = unlimited). Guards against protocol storms
  /// consuming unbounded memory; `event_limit_hit()` reports whether a run
  /// was truncated.
  void set_event_limit(std::uint64_t limit) noexcept { event_limit_ = limit; }
  bool event_limit_hit() const noexcept { return limit_hit_; }

  /// Trace log: cheap structured breadcrumbs ("who did what when") used by
  /// the des_replay example. Disabled by default. Callers that format a
  /// line must gate on tracing() so the fast path never builds a string.
  void set_tracing(bool enabled) noexcept { tracing_ = enabled; }
  bool tracing() const noexcept { return tracing_; }
  void trace(std::string_view line);
  const std::vector<std::string>& trace_log() const noexcept { return trace_; }

  /// Returns the simulator to its just-constructed state while keeping the
  /// event slab and heap storage warm: pending callables are destroyed,
  /// every slot returns to the freelist, and the clock / sequence / limit /
  /// trace state is zeroed. A reset simulator is observably identical to a
  /// fresh one — required for bit-identical arena reuse across chaos plans.
  void reset();

  PoolStats pool_stats() const {
    PoolStats s = stats_;
    s.slab_capacity = slab_.size();
    return s;
  }

 private:
  /// 16-byte queue entry: the FIFO sequence number and the slab slot share
  /// one word (40-bit seq, 24-bit slot). Since seq is monotone and unique,
  /// comparing the packed word under equal times IS the seq comparison.
  struct HeapEntry {
    SimTime time;
    std::uint64_t seq_slot;
  };
  static constexpr unsigned kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;

  // Timer-wheel geometry: 8192 buckets of 1/1024 s cover an 8 s window.
  // Protocol latencies (2-25 ms) and timers (<= 1 s) land in the window;
  // the handful of far timeline events (attack, activation, horizon) go
  // to the overflow heap and migrate when the window advances onto them.
  static constexpr unsigned kWheelBits = 13;
  static constexpr std::size_t kWheelSize = std::size_t{1} << kWheelBits;
  static constexpr std::size_t kWheelMask = kWheelSize - 1;
  static constexpr double kTicksPerSecond = 1024.0;

  static std::uint64_t time_tick(SimTime t) noexcept {
    return static_cast<std::uint64_t>(t * kTicksPerSecond);
  }

  static bool later(const HeapEntry& a, const HeapEntry& b) noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.seq_slot > b.seq_slot;
  }

  /// Takes a slot off the freelist (or grows the slab). The caller
  /// emplaces the callable straight into slab_[slot], then enqueue()s it —
  /// the callable is never moved between construction and dispatch.
  std::uint32_t alloc_slot();
  void enqueue(SimTime t, std::uint32_t slot);
  void insert_entry(const HeapEntry& e);
  /// Points the window at `tick` and pulls every overflow event that now
  /// fits into the wheel. Pre: the wheel is empty, or tick < wheel_base_.
  void rebase(std::uint64_t tick);
  /// Smallest pending (time, seq), or nullptr. Sets peeked_bucket_ for
  /// pop_top(); any insert/rebase invalidates it.
  const HeapEntry* peek_min();
  /// Removes the entry peek_min() returned and advances the cursor.
  void pop_top();

  // 4-ary heap helpers over the overflow vector.
  void overflow_sift_up(std::size_t i) noexcept;
  void overflow_sift_down(std::size_t i) noexcept;

  void mark_occupied(std::size_t bucket) noexcept {
    occupancy_[bucket >> 6] |= std::uint64_t{1} << (bucket & 63);
  }
  void mark_empty(std::size_t bucket) noexcept {
    occupancy_[bucket >> 6] &= ~(std::uint64_t{1} << (bucket & 63));
  }

  std::vector<EventFn> slab_;
  std::vector<std::uint32_t> free_;  // recycled slab slots (LIFO)

  /// One wheel bucket: entries sorted ascending by (time, seq) with a
  /// consumed-prefix cursor. Scheduling is overwhelmingly monotone — the
  /// clock only moves forward and latencies are constants — so inserts are
  /// amortized O(1) appends (rare out-of-order arrivals pay a small
  /// memmove) and pops just advance `head`. Keeping the bucket sorted by
  /// construction is what makes the wheel observably identical to one
  /// global (time, seq) priority queue.
  struct Bucket {
    std::vector<HeapEntry> v;
    std::size_t head = 0;  // entries below head have been popped

    bool drained() const noexcept { return head == v.size(); }
    void insert_sorted(const HeapEntry& e) {
      std::size_t pos = v.size();
      while (pos > head && later(v[pos - 1], e)) --pos;
      v.insert(v.begin() + static_cast<std::ptrdiff_t>(pos), e);
    }
  };

  std::vector<Bucket> wheel_{kWheelSize};
  std::vector<std::uint64_t> occupancy_ =
      std::vector<std::uint64_t>(kWheelSize / 64, 0);
  std::vector<HeapEntry> overflow_;  // 4-ary min-heap on later()
  std::uint64_t wheel_base_ = 0;     // first tick the wheel covers
  std::uint64_t cursor_ = 0;         // tick of the last popped event
  std::size_t wheel_count_ = 0;      // events currently in wheel buckets
  std::size_t pending_ = 0;
  std::size_t peeked_bucket_ = kWheelSize;  // kWheelSize = invalid

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t event_limit_ = 0;
  bool limit_hit_ = false;
  bool tracing_ = false;
  std::vector<std::string> trace_;
  PoolStats stats_;
};

}  // namespace ct::sim
