// SCADA client workload: stands in for the HMI/RTU traffic. Issues an
// operation every few seconds to the SCADA-master group and judges replies:
// a reply signature (value, corrupt-bit) is ACCEPTED once `replies_needed`
// distinct replicas vouch for it (1 for primary-backup, f+1 for BFT).
// Accepting a corrupt signature is an observed safety violation — the
// simulator's ground truth for the paper's gray state.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/flat.h"
#include "sim/invariants.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/state_transfer.h"
#include "util/rng.h"

namespace ct::sim {

struct WorkloadOptions {
  double request_interval_s = 2.0;
  /// A request completing later than this after issue is counted as failed
  /// for availability statistics (it may still complete for gap purposes).
  double request_timeout_s = 2.0;
  /// Matching replies from distinct replicas needed to accept a result.
  int replies_needed = 1;
  /// Times an uncompleted request is re-sent after the timeout (0 = none).
  /// Real SCADA polling retries; retransmissions do not reset `sent_at`.
  int retransmit_limit = 0;
  /// Retransmissions back off exponentially from `request_timeout_s`
  /// (capped) with deterministic seeded jitter, so a fleet of waiting
  /// requests cannot re-fire in lockstep and amplify an outage into a
  /// self-inflicted request storm.
  double retransmit_backoff_multiplier = 2.0;
  double retransmit_backoff_cap_s = 30.0;
  double retransmit_jitter_fraction = 0.1;
  std::uint64_t retransmit_seed = 1;
};

class ClientWorkload {
 public:
  /// One per-request outcome record.
  struct RequestRecord {
    std::int64_t id = 0;
    double sent_at = 0.0;
    double completed_at = -1.0;  ///< -1 while incomplete.
    bool corrupt = false;        ///< Accepted signature was forged.
  };

  ClientWorkload(Simulator& sim, Network& net, NodeAddr self,
                 WorkloadOptions options = {});

  /// Replicas that receive each request.
  void set_targets(std::vector<NodeAddr> targets);

  /// Wires the invariant monitor: every accepted result is reported, so
  /// the monitor can flag forged accepts and judge liveness.
  void set_monitor(InvariantMonitor* monitor) noexcept { monitor_ = monitor; }

  /// Issues requests every interval in [start, end).
  void start(double start_s, double end_s);

  /// True once any corrupt signature was accepted.
  bool safety_violated() const noexcept { return safety_violated_; }
  /// Time of the first accepted corrupt result (-1 when none).
  double first_violation_at() const noexcept { return first_violation_at_; }

  const std::vector<RequestRecord>& records() const noexcept { return records_; }

  /// Fraction of requests issued in [from, to] that completed correctly
  /// within the timeout. Returns 0 when no requests were issued there.
  double success_fraction(double from, double to) const;

  /// Longest service gap in [from, to]: the maximum distance between
  /// consecutive correct completions (window edges count as endpoints).
  double max_gap(double from, double to) const;

  /// Availability time series: success_fraction over consecutive buckets of
  /// `bucket_s` covering [from, to). Buckets with no issued requests read
  /// as -1 (no data). Used by the des_replay example to show the outage
  /// and recovery shape of an incident.
  std::vector<double> availability_series(double bucket_s, double from,
                                          double to) const;

  NodeAddr address() const noexcept { return self_; }

 private:
  void issue();
  void on_message(const Message& msg);
  void schedule_retransmit(std::int64_t request_id, int remaining);

  Simulator& sim_;
  Network& net_;
  NodeAddr self_;
  WorkloadOptions options_;
  std::vector<NodeAddr> targets_;
  double end_s_ = 0.0;

  std::int64_t next_id_ = 1;
  /// Ids are issued densely from 1, so records_[id - 1] IS the record for
  /// id — no separate index map needed.
  std::vector<RequestRecord> records_;

  /// Reply signature accumulation: request id -> (value, corrupt) ->
  /// distinct sender flat keys.
  struct Signature {
    std::int64_t value;
    bool corrupt;
    auto operator<=>(const Signature&) const = default;
  };
  FlatMap<std::int64_t, FlatMap<Signature, FlatSet<std::pair<int, int>>>>
      pending_replies_;

  bool safety_violated_ = false;
  double first_violation_at_ = -1.0;
  InvariantMonitor* monitor_ = nullptr;
  /// Jitter stream for retransmission backoff (seeded, replayable).
  util::Rng retransmit_rng_;
};

}  // namespace ct::sim
