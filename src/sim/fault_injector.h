// Fault-injection for the SCADA discrete-event simulator: a FaultPlan is a
// deterministic, replayable schedule of timed fault events (replica
// crash/restart, link and site flapping, timeout-clock skew, replica
// compromise) plus whole-run message impairments (duplication, bounded
// reordering). A FaultInjector arms a plan against a Network/Simulator
// pair; random *benign* plans — faults a correct protocol stack must ride
// through without changing its Table-I color — are generated from a
// (seed, shape) pair via util::Rng, so every chaos run is reproducible
// bit-for-bit and any failure can be replayed from its printed schedule.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/network.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace ct::sim {

/// What one scheduled fault does.
enum class FaultKind {
  kCrash,       ///< Node neither sends nor receives for the window.
  kLinkFlap,    ///< Link between two sites is down for the window.
  kSiteFlap,    ///< Whole site is down for the window.
  kSkew,        ///< Node's timeout clock runs scaled by `factor`.
  kCompromise,  ///< Node becomes attacker-controlled (never benign).
};

std::string_view fault_kind_name(FaultKind k) noexcept;

/// One timed fault. Fields beyond (kind, at) are kind-specific; unused
/// fields keep their defaults.
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  double at = 0.0;        ///< Start time (s, simulation clock).
  double duration = 0.0;  ///< Window length; 0 = permanent.
  NodeAddr node;          ///< kCrash / kSkew / kCompromise target.
  int site_a = 0;         ///< kLinkFlap endpoint / kSiteFlap site.
  int site_b = 0;         ///< kLinkFlap endpoint.
  double factor = 1.0;    ///< kSkew timeout scale.

  bool operator==(const FaultEvent&) const = default;
};

/// A complete fault schedule for one simulated run.
struct FaultPlan {
  std::vector<FaultEvent> events;
  /// Whole-run message impairments layered on top of NetworkOptions.
  double duplicate_probability = 0.0;
  double reorder_probability = 0.0;
  double reorder_window_s = 0.0;
  /// Extra drop probability for recovery-plane traffic (checkpoints,
  /// state transfer, activation) — starves rejoin retry budgets without
  /// touching the ordering protocol. Schedule directive: "xferloss p".
  double transfer_loss_probability = 0.0;

  /// True when no event is a compromise: every fault is one a correct
  /// protocol stack is expected to tolerate.
  bool benign() const noexcept;

  /// Time windows during which liveness checking is excused (each
  /// crash/flap window padded by `pad_s` of recovery allowance).
  std::vector<std::pair<double, double>> excused_windows(double pad_s) const;

  /// Human-readable, machine-parsable schedule (one directive per line).
  std::string to_schedule() const;
  /// Inverse of to_schedule(). Ignores blank lines and '#' comments;
  /// throws std::invalid_argument on an unrecognized directive.
  static FaultPlan parse_schedule(std::string_view text);

  bool operator==(const FaultPlan&) const = default;
};

/// Shape of randomly generated benign plans. Defaults are tuned so a
/// healthy replicated SCADA stack absorbs every fault without its
/// operational color changing: at most one node is crashed at a time,
/// windows are short, and everything ends before `window_to_s`.
struct BenignPlanShape {
  int max_crashes = 2;             ///< Crash windows (disjoint in time).
  double max_crash_duration_s = 12.0;
  int max_link_flaps = 2;          ///< Brief inter-site link outages.
  double max_link_flap_duration_s = 3.0;
  int max_site_flaps = 1;          ///< Brief whole-site outages.
  double max_site_flap_duration_s = 3.0;
  int max_skews = 2;               ///< Timeout-clock skew windows.
  double min_skew_factor = 0.8;
  double max_skew_factor = 1.5;
  double duplicate_probability = 0.05;
  double reorder_probability = 0.10;
  double reorder_window_s = 0.05;
  /// Faults are scheduled inside [window_from_s, window_to_s); keep the
  /// upper bound well before the availability settle window.
  double window_from_s = 10.0;
  double window_to_s = 300.0;
};

/// Deterministically generates a benign plan for a system of
/// `control_sites` sites with `nodes_per_site[s]` replicas each (the
/// client site is never faulted). The same (shape, rng state) always
/// yields the same plan.
FaultPlan random_benign_plan(const BenignPlanShape& shape,
                             const std::vector<int>& nodes_per_site,
                             util::Rng& rng);

/// Shape of restart-heavy plans: many crash/restart and site-flap windows
/// (every one ends inside the run, so each triggers a rejoin catch-up)
/// plus a transfer-loss probability that pressures the retry budget.
struct RestartPlanShape {
  int min_restarts = 3;  ///< Crash windows, each with a restart.
  int max_restarts = 6;
  double min_crash_duration_s = 8.0;
  double max_crash_duration_s = 25.0;
  int max_site_flaps = 1;  ///< Whole-site bounce (all nodes restart).
  double max_site_flap_duration_s = 6.0;
  double transfer_loss_probability = 0.15;
  double duplicate_probability = 0.03;
  double reorder_probability = 0.05;
  double reorder_window_s = 0.05;
  double window_from_s = 10.0;
  double window_to_s = 300.0;
};

/// Deterministically generates a restart-heavy benign plan: disjoint
/// crash/restart slots (every crash ends, forcing a catch-up transfer),
/// an optional site flap, and recovery-plane message loss.
FaultPlan random_restart_plan(const RestartPlanShape& shape,
                              const std::vector<int>& nodes_per_site,
                              util::Rng& rng);

/// Arms a FaultPlan against a simulation: schedules every event on the
/// simulator, driving the network's crash/link/site controls directly and
/// reaching into protocol state (timeout skew, compromise) through hooks
/// supplied by the harness that owns the replicas.
class FaultInjector {
 public:
  struct Hooks {
    /// Applies a timeout-clock scale factor to one node (1.0 = nominal).
    std::function<void(NodeAddr, double)> set_timeout_scale;
    /// Hands one node to the attacker.
    std::function<void(NodeAddr)> compromise;
    /// The node's host just came back (crash window or site flap ended):
    /// replicas use this to run their rejoin catch-up.
    std::function<void(NodeAddr)> restart;
  };

  FaultInjector(Simulator& sim, Network& net, FaultPlan plan,
                Hooks hooks = {});

  /// Schedules all plan events. Call once, before the run starts.
  void arm();

  const FaultPlan& plan() const noexcept { return plan_; }
  int events_armed() const noexcept { return events_armed_; }

 private:
  Simulator& sim_;
  Network& net_;
  FaultPlan plan_;
  Hooks hooks_;
  int events_armed_ = 0;
  bool armed_ = false;
};

}  // namespace ct::sim
