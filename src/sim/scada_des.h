// ScadaDes: builds a protocol-level discrete-event simulation of any
// scada::Configuration, drives it through a compound-threat timeline
// (flooding at t=0, cyberattack at t=attack), observes the client-visible
// service, and classifies the run into the paper's operational states.
// This validates Table I from protocol behaviour instead of assuming it:
// tests assert ScadaDes's observed color == the analytic evaluator's color
// for every sampled scenario.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "scada/configuration.h"
#include "sim/bft.h"
#include "sim/fault_injector.h"
#include "sim/invariants.h"
#include "sim/network.h"
#include "sim/primary_backup.h"
#include "sim/workload.h"
#include "threat/scenario.h"
#include "threat/system_state.h"

namespace ct::sim {

struct DesOptions {
  /// Timeline.
  double horizon_s = 1200.0;
  double attack_time_s = 200.0;
  /// Availability is judged over the final settle window
  /// [horizon - settle_window_s, horizon - 10].
  double settle_window_s = 200.0;
  /// A service gap longer than this marks the run orange (cold-backup
  /// activation takes minutes; hot takeover and view changes take seconds).
  double orange_gap_s = 120.0;

  PbOptions pb{};
  BftOptions bft{};
  NetworkOptions net{};
  double request_interval_s = 2.0;
  double request_timeout_s = 2.0;
  /// Client retransmissions per request (capped-backoff schedule; 0 = the
  /// paper's fire-and-forget polling).
  int request_retransmit_limit = 0;
  bool tracing = false;
  /// Hard cap on simulation events (storm guard; 0 = unlimited).
  std::uint64_t event_limit = 20000000;
  /// Liveness bound for the invariant monitor (0 disables the check).
  /// Safety invariants are always monitored.
  double liveness_gap_s = 0.0;
  /// Recovery allowance padded around injected fault windows before the
  /// liveness check treats a gap as unexplained.
  double liveness_pad_s = 30.0;
};

/// What one simulated run produced.
struct DesOutcome {
  threat::OperationalState observed = threat::OperationalState::kGreen;
  bool safety_violated = false;
  double max_outage_s = 0.0;
  double steady_availability = 0.0;
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  /// True when the run hit the event limit (protocol storm guard).
  bool truncated = false;
  /// Messages dropped by the network, broken down by cause.
  DropCounters drops;
  /// Extra deliveries injected by message duplication.
  std::uint64_t duplicates = 0;
  /// Protocol invariant violations observed by the InvariantMonitor
  /// (empty on a clean run; see sim/invariants.h).
  std::vector<std::string> invariant_violations;
  /// Availability per 60 s bucket over the whole run (-1 = no requests).
  std::vector<double> availability_timeline;
  std::vector<std::string> trace;

  // ---- recovery / state-transfer accounting (summed over replicas) ----
  /// Catch-up transfers that installed state (rejoins that converged).
  int rejoins = 0;
  /// Transfers that exhausted their retry budget (BFT: degraded to
  /// passive; PB: served fail-open from the local log).
  int rejoin_failures = 0;
  /// Extra transfer rounds beyond the first (retry pressure).
  int transfer_retry_rounds = 0;
  /// Slowest successful catch-up across all replicas (s).
  double max_catchup_s = 0.0;
  /// BFT replicas that ended the run degraded to passive.
  int passive_replicas = 0;
  /// Stable checkpoints formed, summed over BFT replicas.
  int stable_checkpoints = 0;

  // ---- wall-clock throughput (measurement only: these two fields are
  // excluded from bit-identity comparisons against run_reference) ----
  double sim_wall_ms = 0.0;
  double events_per_second = 0.0;
};

/// Field-for-field equality over everything the simulation computed —
/// the bit-identity predicate for run() vs run_reference(). The two
/// wall-clock measurement fields (sim_wall_ms, events_per_second) are
/// excluded; everything else, including the full trace and availability
/// timeline, must match exactly.
bool des_outcomes_identical(const DesOutcome& a, const DesOutcome& b);

/// Aggregate DES throughput counters, accumulated process-wide across every
/// ScadaDes run (fast or reference). Surfaced by `ctctl stats` and the
/// service kStats reply next to the cache statistics.
struct DesCounters {
  std::uint64_t runs = 0;
  std::uint64_t events = 0;
  double wall_ms = 0.0;

  double events_per_second() const noexcept {
    return wall_ms > 0.0 ? events / (wall_ms / 1000.0) : 0.0;
  }
};
DesCounters des_counters_snapshot();

/// Reusable simulator + network arena. A chaos sweep runs hundreds of
/// plans back-to-back; constructing the engine fresh each time re-pays the
/// event-slab, heap, and message-pool warmup. Passing one DesArena across
/// runs keeps that storage warm, and Simulator::reset()/Network::reset()
/// guarantee each run is observably identical to a fresh construction.
/// An arena is single-threaded: use one per worker (e.g. thread_local).
class DesArena {
 public:
  /// Re-arms the simulator for a fresh run. Call before network().
  Simulator& simulator() {
    sim_.reset();
    return sim_;
  }

  /// Builds (first run) or re-arms (subsequent runs) the network. Must be
  /// called after simulator() reset the event queue — pooled message slots
  /// referenced by pending deliveries are recycled here.
  Network& network(std::vector<int> nodes_per_site, NetworkOptions options) {
    if (net_ == nullptr) {
      net_ = std::make_unique<Network>(sim_, std::move(nodes_per_site),
                                       options);
    } else {
      net_->reset(std::move(nodes_per_site), options);
    }
    return *net_;
  }

  /// Pool occupancy probes for the zero-allocation assertions.
  Simulator::PoolStats simulator_stats() const { return sim_.pool_stats(); }
  Network::PoolStats network_stats() const {
    return net_ != nullptr ? net_->pool_stats() : Network::PoolStats{};
  }

 private:
  Simulator sim_;
  std::unique_ptr<Network> net_;
};

class ScadaDes {
 public:
  explicit ScadaDes(scada::Configuration config, DesOptions options = {});

  /// Simulates the compound threat described by `attacked_state` (aligned
  /// with the configuration's sites): kFlooded sites are down from t=0,
  /// kIsolated sites are cut at attack time, and `intrusions[i]` replicas
  /// at site i are compromised at attack time (lowest node index first —
  /// the initial primary/leader, the worst case).
  DesOutcome run(const threat::SystemState& attacked_state) const;

  /// Simulates the compound threat with a fault plan layered on top: the
  /// plan's events (crash/restart, flapping, skew, compromise) and message
  /// impairments (duplication, reordering) are armed before the run, and
  /// its crash/flap windows are excused from the liveness check.
  DesOutcome run(const threat::SystemState& attacked_state,
                 const FaultPlan& plan) const;

  /// Arena-reuse variants: identical results, but simulator/network
  /// storage is recycled from `arena` instead of constructed per run.
  DesOutcome run(const threat::SystemState& attacked_state,
                 DesArena& arena) const;
  DesOutcome run(const threat::SystemState& attacked_state,
                 const FaultPlan& plan, DesArena& arena) const;

  /// Convenience: derives the attacked state from a flood mask and an
  /// attacker capability via the paper's greedy worst-case attacker, then
  /// simulates it.
  DesOutcome run(const std::vector<bool>& site_flooded,
                 threat::AttackerCapability capability) const;

  /// Bit-identity oracle: the pre-overhaul engine (std::function events,
  /// binary heap, per-delivery message copies, std::map bookkeeping) kept
  /// verbatim in sim/reference_des.cpp. Every run() outcome must equal the
  /// matching run_reference() outcome field-for-field (excluding the
  /// sim_wall_ms / events_per_second measurements).
  DesOutcome run_reference(const threat::SystemState& attacked_state) const;
  DesOutcome run_reference(const threat::SystemState& attacked_state,
                           const FaultPlan& plan) const;

  const scada::Configuration& config() const noexcept { return config_; }
  const DesOptions& options() const noexcept { return options_; }

 private:
  DesOutcome run_impl(const threat::SystemState& attacked_state,
                      const FaultPlan* plan, DesArena& arena) const;

  scada::Configuration config_;
  DesOptions options_;
};

}  // namespace ct::sim
