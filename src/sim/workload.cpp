#include "sim/workload.h"

#include <algorithm>
#include <stdexcept>

namespace ct::sim {

ClientWorkload::ClientWorkload(Simulator& sim, Network& net, NodeAddr self,
                               WorkloadOptions options)
    : sim_(sim), net_(net), self_(self), options_(options),
      retransmit_rng_(options.retransmit_seed, "workload-retransmit") {
  if (options_.request_interval_s <= 0.0 || options_.replies_needed < 1) {
    throw std::invalid_argument("ClientWorkload: bad options");
  }
  if (options_.retransmit_backoff_multiplier < 1.0 ||
      options_.retransmit_backoff_cap_s <= 0.0 ||
      options_.retransmit_jitter_fraction < 0.0) {
    throw std::invalid_argument("ClientWorkload: bad retransmit backoff");
  }
  net_.register_handler(self_, [this](const Message& m) { on_message(m); });
}

void ClientWorkload::set_targets(std::vector<NodeAddr> targets) {
  targets_ = std::move(targets);
}

void ClientWorkload::start(double start_s, double end_s) {
  end_s_ = end_s;
  sim_.schedule_at(start_s, [this] { issue(); });
}

void ClientWorkload::issue() {
  if (sim_.now() >= end_s_) return;

  Message req;
  req.type = Message::Type::kRequest;
  req.request_id = next_id_++;

  RequestRecord record;
  record.id = req.request_id;
  record.sent_at = sim_.now();
  records_.push_back(record);  // ids are dense: record for id is at id - 1

  net_.send_group(self_, targets_, req);
  if (options_.retransmit_limit > 0) {
    schedule_retransmit(req.request_id, options_.retransmit_limit);
  }
  sim_.schedule_in(options_.request_interval_s, [this] { issue(); });
}

void ClientWorkload::on_message(const Message& msg) {
  if (msg.type != Message::Type::kReply) return;
  if (msg.request_id < 1 ||
      msg.request_id >= static_cast<std::int64_t>(records_.size()) + 1) {
    return;  // not a request this client issued
  }
  RequestRecord& record = records_[static_cast<std::size_t>(msg.request_id - 1)];
  if (record.completed_at >= 0.0) return;  // already accepted

  auto& sigs = pending_replies_[msg.request_id];
  auto& voters = sigs[{msg.value, msg.corrupt}];
  voters.insert({msg.sender.site, msg.sender.node});
  if (static_cast<int>(voters.size()) < options_.replies_needed) return;

  record.completed_at = sim_.now();
  record.corrupt = msg.corrupt;
  if (monitor_ != nullptr) {
    monitor_->on_client_accept(msg.request_id, msg.corrupt);
  }
  if (msg.corrupt && !safety_violated_) {
    safety_violated_ = true;
    first_violation_at_ = sim_.now();
    if (sim_.tracing()) {
      sim_.trace("client ACCEPTED CORRUPT result for request " +
                 std::to_string(msg.request_id));
    }
  }
  pending_replies_.erase(msg.request_id);
}

double ClientWorkload::success_fraction(double from, double to) const {
  std::size_t issued = 0;
  std::size_t succeeded = 0;
  for (const RequestRecord& r : records_) {
    if (r.sent_at < from || r.sent_at > to) continue;
    ++issued;
    if (r.completed_at >= 0.0 && !r.corrupt &&
        r.completed_at - r.sent_at <= options_.request_timeout_s) {
      ++succeeded;
    }
  }
  if (issued == 0) return 0.0;
  return static_cast<double>(succeeded) / static_cast<double>(issued);
}

void ClientWorkload::schedule_retransmit(std::int64_t request_id,
                                         int remaining) {
  // Capped exponential backoff from the base timeout, with seeded jitter:
  // attempt 0 waits ~timeout, each further attempt doubles (by default).
  const BackoffPolicy backoff{options_.request_timeout_s,
                              options_.retransmit_backoff_multiplier,
                              options_.retransmit_backoff_cap_s,
                              options_.retransmit_jitter_fraction};
  const int attempt = options_.retransmit_limit - remaining;
  const double wait = backoff.delay(attempt, &retransmit_rng_);
  sim_.schedule_in(wait, [this, request_id, remaining] {
    if (request_id < 1 ||
        request_id >= static_cast<std::int64_t>(records_.size()) + 1) {
      return;
    }
    if (records_[static_cast<std::size_t>(request_id - 1)].completed_at >=
        0.0) {
      return;  // done
    }
    Message req;
    req.type = Message::Type::kRequest;
    req.request_id = request_id;
    net_.send_group(self_, targets_, req);
    if (remaining > 1) schedule_retransmit(request_id, remaining - 1);
  });
}

std::vector<double> ClientWorkload::availability_series(double bucket_s,
                                                        double from,
                                                        double to) const {
  std::vector<double> out;
  if (bucket_s <= 0.0 || to <= from) return out;
  for (double t = from; t < to; t += bucket_s) {
    const double hi = std::min(to, t + bucket_s);
    std::size_t issued = 0;
    std::size_t succeeded = 0;
    for (const RequestRecord& r : records_) {
      if (r.sent_at < t || r.sent_at >= hi) continue;
      ++issued;
      if (r.completed_at >= 0.0 && !r.corrupt &&
          r.completed_at - r.sent_at <= options_.request_timeout_s) {
        ++succeeded;
      }
    }
    out.push_back(issued == 0
                      ? -1.0
                      : static_cast<double>(succeeded) /
                            static_cast<double>(issued));
  }
  return out;
}

double ClientWorkload::max_gap(double from, double to) const {
  std::vector<double> successes;
  for (const RequestRecord& r : records_) {
    if (r.completed_at >= from && r.completed_at <= to && !r.corrupt) {
      successes.push_back(r.completed_at);
    }
  }
  std::sort(successes.begin(), successes.end());
  double gap = 0.0;
  double prev = from;
  for (const double t : successes) {
    gap = std::max(gap, t - prev);
    prev = t;
  }
  gap = std::max(gap, to - prev);
  return gap;
}

}  // namespace ct::sim
