#include "sim/scada_des.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/reference_des.h"
#include "threat/attacker.h"
#include "util/log.h"

namespace ct::sim {

namespace {

// Process-wide DES throughput accounting, registry-backed: chaos sweeps
// fold runs in from several workers, each touching only its thread-local
// shard. Function-local statics keep registration lazy and ordered.
struct DesMetrics {
  obs::Counter runs{"des.runs"};
  obs::Counter events{"des.events"};
  obs::Counter messages{"des.messages"};
  obs::Counter duplicates{"des.duplicates"};
  obs::Counter wall_us{"des.wall_us"};
  obs::Counter drop_loss{"des.drops.loss"};
  obs::Counter drop_site_down{"des.drops.site_down"};
  obs::Counter drop_isolation{"des.drops.isolation"};
  obs::Counter drop_link_down{"des.drops.link_down"};
  obs::Counter drop_crashed{"des.drops.crashed"};
  obs::Counter drop_in_flight{"des.drops.in_flight"};
  obs::Counter drop_transfer_loss{"des.drops.transfer_loss"};
  obs::Counter slab_grows{"des.pool.slab_grows"};
  obs::Counter pool_hits{"des.pool.msg_hits"};
  obs::Counter pool_misses{"des.pool.msg_misses"};
  obs::Gauge slab_capacity{"des.pool.slab_capacity"};
  obs::Gauge peak_queue{"des.pool.peak_queue"};
  obs::Histogram run_us{"des.run_us"};
};

DesMetrics& des_metrics() {
  static DesMetrics m;
  return m;
}

/// Stamps the measurement-only fields and folds the run — throughput,
/// per-cause drops, wall time — into the metrics registry. Runs after
/// outcome assembly so it cannot affect bit-identity.
void finish_run_timing(DesOutcome& outcome,
                       std::chrono::steady_clock::time_point started) {
  const auto elapsed = std::chrono::steady_clock::now() - started;
  const double wall_ms =
      std::chrono::duration<double, std::milli>(elapsed).count();
  outcome.sim_wall_ms = wall_ms;
  outcome.events_per_second =
      wall_ms > 0.0 ? static_cast<double>(outcome.events) / (wall_ms / 1000.0)
                    : 0.0;
  if (!obs::enabled()) return;
  DesMetrics& m = des_metrics();
  const auto wall_us = static_cast<std::uint64_t>(wall_ms * 1000.0);
  m.runs.inc();
  m.events.inc(outcome.events);
  m.messages.inc(outcome.messages);
  m.duplicates.inc(static_cast<std::uint64_t>(outcome.duplicates));
  m.wall_us.inc(wall_us);
  m.run_us.observe(wall_us);
  const auto& d = outcome.drops;
  m.drop_loss.inc(static_cast<std::uint64_t>(d.loss));
  m.drop_site_down.inc(static_cast<std::uint64_t>(d.site_down));
  m.drop_isolation.inc(static_cast<std::uint64_t>(d.isolation));
  m.drop_link_down.inc(static_cast<std::uint64_t>(d.link_down));
  m.drop_crashed.inc(static_cast<std::uint64_t>(d.crashed));
  m.drop_in_flight.inc(static_cast<std::uint64_t>(d.in_flight));
  m.drop_transfer_loss.inc(static_cast<std::uint64_t>(d.transfer_loss));
}

/// Folds the arena's event-slab and message-pool occupancy into the
/// registry (peak gauges + growth counters).
void fold_pool_stats(const DesArena& arena) {
  if (!obs::enabled()) return;
  DesMetrics& m = des_metrics();
  const Simulator::PoolStats sim_stats = arena.simulator_stats();
  const Network::PoolStats net_stats = arena.network_stats();
  m.slab_grows.inc(sim_stats.slab_grows);
  m.slab_capacity.max(sim_stats.slab_capacity);
  m.peak_queue.max(sim_stats.peak_queue);
  m.pool_hits.inc(net_stats.pool_hits);
  m.pool_misses.inc(net_stats.pool_misses);
}

}  // namespace

bool des_outcomes_identical(const DesOutcome& a, const DesOutcome& b) {
  return a.observed == b.observed && a.safety_violated == b.safety_violated &&
         a.max_outage_s == b.max_outage_s &&
         a.steady_availability == b.steady_availability &&
         a.events == b.events && a.messages == b.messages &&
         a.truncated == b.truncated && a.drops.loss == b.drops.loss &&
         a.drops.site_down == b.drops.site_down &&
         a.drops.isolation == b.drops.isolation &&
         a.drops.link_down == b.drops.link_down &&
         a.drops.crashed == b.drops.crashed &&
         a.drops.in_flight == b.drops.in_flight &&
         a.drops.transfer_loss == b.drops.transfer_loss &&
         a.duplicates == b.duplicates &&
         a.invariant_violations == b.invariant_violations &&
         a.availability_timeline == b.availability_timeline &&
         a.trace == b.trace && a.rejoins == b.rejoins &&
         a.rejoin_failures == b.rejoin_failures &&
         a.transfer_retry_rounds == b.transfer_retry_rounds &&
         a.max_catchup_s == b.max_catchup_s &&
         a.passive_replicas == b.passive_replicas &&
         a.stable_checkpoints == b.stable_checkpoints;
}

DesCounters des_counters_snapshot() {
  DesMetrics& m = des_metrics();
  DesCounters c;
  c.runs = m.runs.value();
  c.events = m.events.value();
  c.wall_ms = static_cast<double>(m.wall_us.value()) / 1000.0;
  return c;
}

ScadaDes::ScadaDes(scada::Configuration config, DesOptions options)
    : config_(std::move(config)), options_(options) {
  if (config_.sites.empty()) {
    throw std::invalid_argument("ScadaDes: configuration has no sites");
  }
}

DesOutcome ScadaDes::run(const std::vector<bool>& site_flooded,
                         threat::AttackerCapability capability) const {
  if (site_flooded.size() != config_.sites.size()) {
    throw std::invalid_argument("ScadaDes: flood mask size mismatch");
  }
  threat::SystemState state;
  state.intrusions.assign(config_.sites.size(), 0);
  for (const bool flooded : site_flooded) {
    state.site_status.push_back(flooded ? threat::SiteStatus::kFlooded
                                        : threat::SiteStatus::kUp);
  }
  const threat::GreedyWorstCaseAttacker attacker;
  return run(attacker.attack(config_, state, capability));
}

DesOutcome ScadaDes::run(const threat::SystemState& attacked_state) const {
  DesArena arena;
  return run_impl(attacked_state, nullptr, arena);
}

DesOutcome ScadaDes::run(const threat::SystemState& attacked_state,
                         const FaultPlan& plan) const {
  DesArena arena;
  return run_impl(attacked_state, &plan, arena);
}

DesOutcome ScadaDes::run(const threat::SystemState& attacked_state,
                         DesArena& arena) const {
  return run_impl(attacked_state, nullptr, arena);
}

DesOutcome ScadaDes::run(const threat::SystemState& attacked_state,
                         const FaultPlan& plan, DesArena& arena) const {
  return run_impl(attacked_state, &plan, arena);
}

DesOutcome ScadaDes::run_reference(
    const threat::SystemState& attacked_state) const {
  obs::Span span("des.run_reference");
  const auto started = std::chrono::steady_clock::now();
  DesOutcome outcome =
      refdes::run_reference_des(config_, options_, attacked_state, nullptr);
  finish_run_timing(outcome, started);
  return outcome;
}

DesOutcome ScadaDes::run_reference(const threat::SystemState& attacked_state,
                                   const FaultPlan& plan) const {
  obs::Span span("des.run_reference");
  const auto started = std::chrono::steady_clock::now();
  DesOutcome outcome =
      refdes::run_reference_des(config_, options_, attacked_state, &plan);
  finish_run_timing(outcome, started);
  return outcome;
}

DesOutcome ScadaDes::run_impl(const threat::SystemState& attacked_state,
                              const FaultPlan* plan, DesArena& arena) const {
  obs::Span span("des.run");
  const auto started = std::chrono::steady_clock::now();
  const std::size_t n_sites = config_.sites.size();
  if (attacked_state.site_status.size() != n_sites ||
      attacked_state.intrusions.size() != n_sites) {
    throw std::invalid_argument("ScadaDes: state size mismatch");
  }

  Simulator& sim = arena.simulator();  // reset for this run
  sim.set_tracing(options_.tracing);
  sim.set_event_limit(options_.event_limit);

  // Network: one site per control site plus the client (field) site.
  std::vector<int> nodes_per_site;
  for (const scada::ControlSite& site : config_.sites) {
    nodes_per_site.push_back(site.replicas);
  }
  const int client_site = static_cast<int>(n_sites);
  nodes_per_site.push_back(2);  // client + failover controller
  NetworkOptions net_options = options_.net;
  if (plan != nullptr) {
    // The plan's message impairments are layered on top of the base WAN.
    net_options.duplicate_probability =
        std::max(net_options.duplicate_probability,
                 plan->duplicate_probability);
    net_options.reorder_probability =
        std::max(net_options.reorder_probability, plan->reorder_probability);
    net_options.reorder_window_s =
        std::max(net_options.reorder_window_s, plan->reorder_window_s);
    net_options.control_loss_probability =
        std::max(net_options.control_loss_probability,
                 plan->transfer_loss_probability);
  }
  Network& net = arena.network(std::move(nodes_per_site), net_options);

  // Invariant monitor: safety is always watched; liveness when enabled.
  InvariantOptions inv_options;
  inv_options.f = config_.style == scada::ReplicationStyle::kIntrusionTolerant
                      ? config_.intrusion_tolerance_f
                      : 0;
  inv_options.liveness_gap_s = options_.liveness_gap_s;
  InvariantMonitor monitor(sim, inv_options);

  // Client workload.
  const bool bft = config_.style == scada::ReplicationStyle::kIntrusionTolerant;
  WorkloadOptions wopts;
  wopts.request_interval_s = options_.request_interval_s;
  wopts.request_timeout_s = options_.request_timeout_s;
  wopts.replies_needed = bft ? config_.intrusion_tolerance_f + 1 : 1;
  wopts.retransmit_limit = options_.request_retransmit_limit;
  wopts.retransmit_seed = options_.net.impairment_seed;
  ClientWorkload client(sim, net, {client_site, 0}, wopts);
  client.set_monitor(&monitor);
  std::vector<NodeAddr> targets;
  for (std::size_t s = 0; s < n_sites; ++s) {
    for (int node = 0; node < config_.sites[s].replicas; ++node) {
      targets.push_back({static_cast<int>(s), node});
    }
  }
  client.set_targets(std::move(targets));

  // Replicas.
  std::vector<std::unique_ptr<PbReplica>> pb_replicas;
  std::vector<std::unique_ptr<BftReplica>> bft_replicas;
  std::vector<std::unique_ptr<RecoveryScheduler>> schedulers;
  // Indexed [site][node] for compromise targeting.
  std::vector<std::vector<PbReplica*>> pb_by_site(n_sites);
  std::vector<std::vector<BftReplica*>> bft_by_site(n_sites);

  BftOptions group_opts = options_.bft;
  group_opts.f = config_.intrusion_tolerance_f;
  group_opts.k = config_.proactive_recovery_k;

  int next_group_id = 0;
  const auto make_bft_group = [&](const std::vector<int>& sites,
                                  bool initially_active) {
    std::vector<int> counts;
    for (const int s : sites) {
      counts.push_back(config_.sites[static_cast<std::size_t>(s)].replicas);
    }
    const std::vector<NodeAddr> group = interleaved_group(sites, counts);
    std::vector<BftReplica*> members;
    const int group_id = next_group_id++;
    for (std::size_t i = 0; i < group.size(); ++i) {
      auto replica = std::make_unique<BftReplica>(
          sim, net, group[i], group, static_cast<int>(i), group_opts,
          initially_active);
      replica->set_monitor(&monitor, group_id);
      members.push_back(replica.get());
      bft_by_site[static_cast<std::size_t>(group[i].site)].push_back(
          replica.get());
      bft_replicas.push_back(std::move(replica));
    }
    // One proactive-recovery rotation per group (k = 1).
    if (config_.proactive_recovery_k > 0) {
      schedulers.push_back(
          std::make_unique<RecoveryScheduler>(sim, members, group_opts));
    }
  };

  if (bft) {
    if (config_.active_multisite) {
      std::vector<int> hot_sites;
      for (std::size_t s = 0; s < n_sites; ++s) {
        if (config_.sites[s].hot) hot_sites.push_back(static_cast<int>(s));
      }
      make_bft_group(hot_sites, true);
    } else {
      for (std::size_t s = 0; s < n_sites; ++s) {
        make_bft_group({static_cast<int>(s)}, config_.sites[s].hot);
      }
    }
  } else {
    for (std::size_t s = 0; s < n_sites; ++s) {
      for (int node = 0; node < config_.sites[s].replicas; ++node) {
        auto replica = std::make_unique<PbReplica>(
            sim, net, NodeAddr{static_cast<int>(s), node}, options_.pb,
            config_.sites[s].hot);
        replica->set_monitor(&monitor);
        pb_by_site[s].push_back(replica.get());
        pb_replicas.push_back(std::move(replica));
      }
    }
  }

  // Failover controller when the configuration has a cold backup site.
  std::unique_ptr<FailoverController> controller;
  for (std::size_t s = 0; s < n_sites; ++s) {
    if (!config_.sites[s].hot) {
      controller = std::make_unique<FailoverController>(
          sim, net, NodeAddr{client_site, 1}, client, static_cast<int>(s),
          options_.pb);
      break;
    }
  }

  // Fault plan: map skew/compromise hooks onto the replica objects and arm
  // every scheduled event.
  std::unique_ptr<FaultInjector> injector;
  if (plan != nullptr) {
    const auto for_replica = [&, bft](NodeAddr addr, auto&& pb_fn,
                                      auto&& bft_fn) {
      if (addr.site < 0 || static_cast<std::size_t>(addr.site) >= n_sites) {
        return;  // client site and out-of-range targets are not replicas
      }
      const auto site = static_cast<std::size_t>(addr.site);
      const auto node = static_cast<std::size_t>(addr.node);
      if (bft) {
        if (node < bft_by_site[site].size()) bft_fn(bft_by_site[site][node]);
      } else {
        if (node < pb_by_site[site].size()) pb_fn(pb_by_site[site][node]);
      }
    };
    FaultInjector::Hooks hooks;
    hooks.set_timeout_scale = [for_replica](NodeAddr addr, double scale) {
      for_replica(
          addr, [scale](PbReplica* r) { r->set_timeout_scale(scale); },
          [scale](BftReplica* r) { r->set_timeout_scale(scale); });
    };
    hooks.compromise = [for_replica](NodeAddr addr) {
      for_replica(
          addr, [](PbReplica* r) { r->set_compromised(true); },
          [](BftReplica* r) { r->set_compromised(true); });
    };
    hooks.restart = [for_replica](NodeAddr addr) {
      for_replica(
          addr, [](PbReplica* r) { r->on_restart(); },
          [](BftReplica* r) { r->on_restart(); });
    };
    injector = std::make_unique<FaultInjector>(sim, net, *plan,
                                               std::move(hooks));
    injector->arm();
    // Scheduled fault windows are declared outages: only gaps the plan
    // does not explain count against liveness.
    for (const auto& [from, to] :
         plan->excused_windows(options_.liveness_pad_s)) {
      monitor.declare_outage(from, to);
    }
  }

  // Declared outages from the compound threat itself: a flooded site
  // shapes service from t=0; isolation/intrusion effects start at attack
  // time. The liveness invariant only bites on unexplained gaps.
  bool any_flooded = false;
  bool any_attack = false;
  for (std::size_t s = 0; s < n_sites; ++s) {
    any_flooded |=
        attacked_state.site_status[s] == threat::SiteStatus::kFlooded;
    any_attack |=
        attacked_state.site_status[s] == threat::SiteStatus::kIsolated ||
        attacked_state.intrusions[s] > 0;
  }
  if (any_flooded) {
    monitor.declare_outage(0.0, options_.horizon_s);
  } else if (any_attack) {
    monitor.declare_outage(options_.attack_time_s, options_.horizon_s);
  }

  // Timeline. Floods are in effect from t=0.
  for (std::size_t s = 0; s < n_sites; ++s) {
    if (attacked_state.site_status[s] == threat::SiteStatus::kFlooded) {
      net.set_site_down(static_cast<int>(s), true);
      if (sim.tracing()) {
        sim.trace("site " + std::to_string(s) + " flooded (down from t=0)");
      }
    }
  }
  for (auto& r : pb_replicas) r->start();
  for (auto& r : bft_replicas) r->start();
  for (auto& s : schedulers) s->start(options_.bft.recovery_period_s);
  client.start(0.0, options_.horizon_s);
  if (controller) controller->start(0.0, options_.horizon_s);

  // The cyberattack fires at attack_time_s.
  sim.schedule_at(options_.attack_time_s, [&] {
    for (std::size_t s = 0; s < n_sites; ++s) {
      if (attacked_state.site_status[s] == threat::SiteStatus::kIsolated) {
        net.set_site_isolated(static_cast<int>(s), true);
        if (sim.tracing()) {
          sim.trace("site " + std::to_string(s) + " ISOLATED by attacker");
        }
      }
      const int intrusions = attacked_state.intrusions[s];
      for (int node = 0; node < intrusions; ++node) {
        if (bft) {
          bft_by_site[s].at(static_cast<std::size_t>(node))->set_compromised(true);
        } else {
          pb_by_site[s].at(static_cast<std::size_t>(node))->set_compromised(true);
        }
        if (sim.tracing()) {
          sim.trace("replica s" + std::to_string(s) + "/n" +
                    std::to_string(node) + " COMPROMISED by attacker");
        }
      }
    }
  });

  sim.run_until(options_.horizon_s);

  // Classify what the client observed.
  DesOutcome outcome;
  outcome.safety_violated = client.safety_violated();
  const double judge_to = options_.horizon_s - 10.0;
  const double settle_from = options_.horizon_s - options_.settle_window_s;
  outcome.steady_availability = client.success_fraction(settle_from, judge_to);
  outcome.max_outage_s = client.max_gap(0.0, judge_to);
  outcome.events = sim.events_processed();
  outcome.messages = net.messages_sent();
  outcome.truncated = sim.event_limit_hit();
  outcome.drops = net.drop_counters();
  outcome.duplicates = net.messages_duplicated();
  monitor.finalize(0.0, judge_to);
  outcome.invariant_violations = monitor.violations();
  outcome.availability_timeline =
      client.availability_series(60.0, 0.0, options_.horizon_s);
  outcome.trace = sim.trace_log();

  // Recovery accounting across both stacks.
  const auto fold_stats = [&outcome](const RejoinStats& s) {
    outcome.rejoins += s.rejoins;
    outcome.rejoin_failures += s.failures;
    outcome.transfer_retry_rounds += s.retry_rounds;
    outcome.max_catchup_s = std::max(outcome.max_catchup_s, s.max_catchup_s);
  };
  for (const auto& r : bft_replicas) {
    fold_stats(r->rejoin_stats());
    if (r->passive()) ++outcome.passive_replicas;
    outcome.stable_checkpoints += r->checkpoints_formed();
  }
  for (const auto& r : pb_replicas) fold_stats(r->rejoin_stats());

  if (outcome.truncated) {
    CT_LOG(kWarn, "scada_des")
        << "run for configuration '" << config_.name
        << "' hit the event limit (" << outcome.events
        << " events) — observed color may be wrong";
  }

  if (outcome.safety_violated) {
    outcome.observed = threat::OperationalState::kGray;
  } else if (outcome.steady_availability < 0.5) {
    outcome.observed = threat::OperationalState::kRed;
  } else if (outcome.max_outage_s > options_.orange_gap_s) {
    outcome.observed = threat::OperationalState::kOrange;
  } else {
    outcome.observed = threat::OperationalState::kGreen;
  }
  finish_run_timing(outcome, started);
  fold_pool_stats(arena);
  return outcome;
}

}  // namespace ct::sim
