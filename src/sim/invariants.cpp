#include "sim/invariants.h"

#include <algorithm>
#include <sstream>

namespace ct::sim {

InvariantMonitor::InvariantMonitor(Simulator& sim, InvariantOptions options)
    : sim_(sim), options_(options) {}

void InvariantMonitor::record(const std::string& violation) {
  std::ostringstream line;
  line << "t=" << sim_.now() << " " << violation;
  violations_.push_back(line.str());
  if (sim_.tracing()) {
    sim_.trace("INVARIANT VIOLATION: " + violation);
  }
}

void InvariantMonitor::on_execute(NodeAddr replica, int group,
                                  std::int64_t view, std::int64_t seq,
                                  std::int64_t request_id) {
  const auto key = std::make_tuple(group, view, seq);
  const auto [it, inserted] =
      committed_.try_emplace(key, std::make_pair(request_id, replica));
  if (!inserted && it->second.first != request_id) {
    std::ostringstream what;
    what << "safety-agreement: group " << group << " view " << view << " seq "
         << seq << " executed as request " << it->second.first << " by "
         << to_string(it->second.second) << " but as request " << request_id
         << " by " << to_string(replica);
    record(what.str());
  }
}

void InvariantMonitor::on_compromise(NodeAddr replica) {
  compromised_.insert({replica.site, replica.node});
}

void InvariantMonitor::on_client_accept(std::int64_t request_id,
                                        bool corrupt) {
  if (!corrupt) {
    correct_accepts_.push_back(sim_.now());
    return;
  }
  if (compromised_count() <= options_.f) {
    std::ostringstream what;
    what << "safety-forgery: client accepted forged reply for request "
         << request_id << " with only " << compromised_count()
         << " compromised replicas (f=" << options_.f << ")";
    record(what.str());
  }
}

void InvariantMonitor::on_checkpoint(NodeAddr replica, int group,
                                     std::int64_t count, std::int64_t digest) {
  if (compromised_.contains({replica.site, replica.node})) return;
  checkpoints_[group].insert({count, digest});
}

void InvariantMonitor::on_state_install(NodeAddr replica, int group,
                                        std::int64_t count,
                                        std::int64_t digest) {
  // A trivial install (empty state) is always legitimate: cold groups have
  // no checkpoint history yet.
  if (count == 0) return;
  const auto it = checkpoints_.find(group);
  if (it != checkpoints_.end() && it->second.contains({count, digest})) return;
  std::ostringstream what;
  what << "state-transfer: " << to_string(replica) << " of group " << group
       << " installed state claiming checkpoint (count " << count
       << ", digest " << digest
       << ") that no correct replica ever voted for";
  record(what.str());
}

void InvariantMonitor::declare_outage(double from, double to) {
  if (to <= from) return;
  outages_.emplace_back(from, to);
}

double InvariantMonitor::uncovered_span(double from, double to) const {
  std::vector<std::pair<double, double>> merged = outages_;
  std::sort(merged.begin(), merged.end());
  double longest = 0.0;
  double cursor = from;
  for (const auto& [lo, hi] : merged) {
    if (hi <= cursor) continue;
    if (lo >= to) break;
    if (lo > cursor) longest = std::max(longest, std::min(lo, to) - cursor);
    cursor = std::max(cursor, hi);
    if (cursor >= to) return longest;
  }
  if (cursor < to) longest = std::max(longest, to - cursor);
  return longest;
}

void InvariantMonitor::finalize(double judge_from, double judge_to) {
  if (options_.liveness_gap_s <= 0.0 || judge_to <= judge_from) return;
  // Gap endpoints: the judged-window edges plus every correct completion.
  std::vector<double> points;
  points.push_back(judge_from);
  for (const double t : correct_accepts_) {
    if (t >= judge_from && t <= judge_to) points.push_back(t);
  }
  points.push_back(judge_to);
  std::sort(points.begin(), points.end());
  for (std::size_t i = 1; i < points.size(); ++i) {
    const double lo = points[i - 1];
    const double hi = points[i];
    if (hi - lo <= options_.liveness_gap_s) continue;
    const double unexplained = uncovered_span(lo, hi);
    if (unexplained > options_.liveness_gap_s) {
      std::ostringstream what;
      what << "liveness: " << unexplained
           << " s without a correct completion in [" << lo << ", " << hi
           << ") outside declared outages (bound " << options_.liveness_gap_s
           << " s)";
      record(what.str());
      return;  // one liveness finding per run is enough
    }
  }
}

}  // namespace ct::sim
