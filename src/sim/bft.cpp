#include "sim/bft.h"

#include <algorithm>
#include <stdexcept>

#include "scada/requirements.h"

namespace ct::sim {

BftReplica::BftReplica(Simulator& sim, Network& net, NodeAddr self,
                       std::vector<NodeAddr> group, int index,
                       BftOptions options, bool group_initially_active)
    : sim_(sim), net_(net), self_(self), group_(std::move(group)),
      index_(index), options_(options),
      quorum_(scada::bft_quorum(static_cast<int>(group_.size()), options.f)),
      active_(group_initially_active) {
  if (index_ < 0 || static_cast<std::size_t>(index_) >= group_.size() ||
      !(group_[static_cast<std::size_t>(index_)] == self_)) {
    throw std::invalid_argument("BftReplica: index does not match group slot");
  }
  if (group_.size() > 64) {
    // Voter sets are 64-bit masks; the paper's largest group is 18.
    throw std::invalid_argument("BftReplica: group larger than 64 members");
  }
  int max_site = 0;
  int max_node = 0;
  for (const NodeAddr m : group_) {
    max_site = std::max(max_site, m.site);
    max_node = std::max(max_node, m.node);
  }
  lut_stride_ = static_cast<std::size_t>(max_node) + 1;
  member_lut_.assign((static_cast<std::size_t>(max_site) + 1) * lut_stride_,
                     -1);
  for (std::size_t i = 0; i < group_.size(); ++i) {
    member_lut_[static_cast<std::size_t>(group_[i].site) * lut_stride_ +
                static_cast<std::size_t>(group_[i].node)] =
        static_cast<std::int8_t>(i);
  }
  stable_digest_ = state_digest({});
  // Catch-up installs need f+1 matching peers: at most f can lie, so any
  // f+1 matching certificate has a correct voucher.
  transfer_ = std::make_unique<StateTransferClient>(
      sim_, options_.state_transfer, options_.f + 1,
      StateTransferClient::Callbacks{
          [this](std::int64_t epoch) {
            Message req;
            req.type = Message::Type::kStateRequest;
            req.request_id = epoch;
            req.seq = static_cast<std::int64_t>(executed_.size());
            broadcast_to_group(req);
          },
          [this](const StateTransferClient::Result& r) { install_state(r); },
          [this](int rounds) { catchup_failed(rounds); }});
  net_.register_handler(self_, [this](const Message& m) { on_message(m); });
}

void BftReplica::start() {
  last_progress_ = sim_.now();
  watchdog_loop();
}

void BftReplica::set_compromised(bool compromised) noexcept {
  if (compromised && !compromised_ && monitor_ != nullptr) {
    monitor_->on_compromise(self_);
  }
  compromised_ = compromised;
}

bool BftReplica::is_leader() const {
  return static_cast<std::size_t>(view_ % static_cast<std::int64_t>(
             group_.size())) == static_cast<std::size_t>(index_);
}

void BftReplica::broadcast_to_group(const Message& msg) {
  net_.send_group(self_, group_, msg);
}

void BftReplica::begin_recovery() {
  recovering_ = true;
  // A rejuvenating replica abandons any in-flight catch-up; end_recovery
  // starts a fresh one with a fresh retry budget.
  transfer_->abort();
  catching_up_ = false;
  // Note: the compromised_ flag is NOT cleared here. The paper's analysis
  // classifies a static post-attack state, so the simulator keeps the
  // attacker's foothold for the whole analysis window; what proactive
  // recovery buys in that model is the "k" slot in n = 3f + 2k + 1
  // (tolerating a recovering replica's absence), per Sousa et al. [23].
  if (sim_.tracing()) {
    sim_.trace(to_string(self_) + " proactive recovery begins");
  }
}

void BftReplica::end_recovery() {
  recovering_ = false;
  last_progress_ = sim_.now();
  if (sim_.tracing()) {
    sim_.trace(to_string(self_) + " proactive recovery ends");
  }
  begin_catchup("proactive recovery");
}

void BftReplica::on_restart() {
  if (!active_ || compromised_ || recovering_) return;
  begin_catchup("restart");
}

void BftReplica::begin_catchup(const char* reason) {
  if (!active_ || compromised_) return;
  // A restart gives a previously passive replica a fresh retry budget.
  passive_ = false;
  catching_up_ = true;
  last_progress_ = sim_.now();
  if (sim_.tracing()) {
    sim_.trace(to_string(self_) + " catch-up transfer begins (" +
               std::string(reason) + ")");
  }
  transfer_->begin();
}

void BftReplica::install_state(const StateTransferClient::Result& result) {
  for (const std::int64_t id : result.ids) {
    if (executed_.contains(id)) continue;
    // The transferred tail carries no client address; the client has long
    // since collected its reply quorum from the peers that executed live.
    note_executed_id(id);
    executed_[id] = NodeAddr{};
    advance_executed_prefix(id);
    pending_.erase(id);
    accept_votes_.erase(id);
  }
  if (result.count > stable_count_) {
    stable_count_ = result.count;
    stable_digest_ = result.digest;
    gc_below_stable();
  }
  if (monitor_ != nullptr) {
    monitor_->on_state_install(self_, group_id_, result.count, result.digest);
  }
  catching_up_ = false;
  last_progress_ = sim_.now();
  if (sim_.tracing()) {
    sim_.trace(to_string(self_) + " installed state (count " +
               std::to_string(result.count) + ", " +
               std::to_string(result.rounds) + " round(s))");
  }
  if (is_leader()) propose_pending();
}

void BftReplica::catchup_failed(int rounds) {
  catching_up_ = false;
  passive_ = true;
  if (sim_.tracing()) {
    sim_.trace(to_string(self_) + " catch-up failed after " +
               std::to_string(rounds) + " rounds; degrading to passive");
  }
}

RejoinStats BftReplica::rejoin_stats() const {
  RejoinStats s;
  s.rejoins = transfer_->transfers_completed();
  s.failures = transfer_->transfers_failed();
  s.retry_rounds = transfer_->retry_rounds();
  s.max_catchup_s = transfer_->max_catchup_s();
  return s;
}

void BftReplica::on_message(const Message& msg) {
  if (msg.type == Message::Type::kActivate) {
    // Ack unconditionally (idempotent) so the controller's retransmit loop
    // stops even when the first activation is already pending.
    Message ack;
    ack.type = Message::Type::kActivateAck;
    ack.request_id = msg.request_id;
    net_.send(self_, msg.sender, ack);
    if (active_ || activation_pending_) return;
    activation_pending_ = true;
    sim_.schedule_in(options_.activation_delay_s, [this] {
      active_ = true;
      activation_pending_ = false;
      last_progress_ = sim_.now();
      if (sim_.tracing()) {
        sim_.trace(to_string(self_) + " cold BFT group activated");
      }
      // A freshly activated group member syncs before serving. With every
      // member equally cold the transfer converges on the trivial (empty)
      // certificate; a staggered activation picks up real state.
      begin_catchup("cold activation");
    });
    return;
  }

  // A compromised replica ignores the protocol but races forged replies to
  // the client (worst case permitted by the threat model).
  if (compromised_) {
    if (msg.type == Message::Type::kRequest) {
      Message reply;
      reply.type = Message::Type::kReply;
      reply.request_id = msg.request_id;
      reply.value = -msg.request_id;
      reply.corrupt = true;
      net_.send(self_, msg.sender, reply);
    }
    return;
  }
  if (recovering_ || !active_ || passive_) return;

  // While catching up, the replica answers state requests and overhears
  // the ordering protocol (per-request slots make that safe) but does not
  // serve clients; serving resumes once the transfer installs.
  switch (msg.type) {
    case Message::Type::kStateRequest: return on_state_request(msg);
    case Message::Type::kStateReply: return transfer_->on_reply(msg);
    case Message::Type::kCheckpoint: return on_checkpoint_vote(msg);
    case Message::Type::kRequest:
      if (catching_up_) return;
      return on_request(msg);
    case Message::Type::kProposal: return on_proposal(msg);
    case Message::Type::kAccept: return on_accept(msg);
    case Message::Type::kViewChange: return on_view_change(msg);
    default: return;
  }
}

void BftReplica::on_state_request(const Message& msg) {
  Message reply;
  reply.type = Message::Type::kStateReply;
  reply.request_id = msg.request_id;  // echo the transfer epoch
  reply.seq = stable_count_;
  reply.value = stable_digest_;
  reply.payload = executed_ids();
  net_.send(self_, msg.sender, reply);
}

void BftReplica::on_request(const Message& msg) {
  if (executed_contains(msg.request_id)) {
    // Retransmission after execution: reply directly.
    Message reply;
    reply.type = Message::Type::kReply;
    reply.request_id = msg.request_id;
    reply.value = msg.request_id;
    net_.send(self_, msg.sender, reply);
    return;
  }
  pending_[msg.request_id] = msg.sender;
  if (is_leader()) propose_pending();
}

std::vector<std::int64_t> BftReplica::executed_ids() const {
  std::vector<std::int64_t> ids;
  ids.reserve(executed_.size());
  for (const auto& [id, client] : executed_) {
    (void)client;
    ids.push_back(id);  // FlatMap iteration is already sorted
  }
  return ids;
}

void BftReplica::advance_executed_prefix(std::int64_t id) {
  if (id != executed_prefix_ + 1) return;
  auto it = executed_.find(id);
  while (it != executed_.end() && it->first == executed_prefix_ + 1) {
    ++executed_prefix_;
    ++it;
  }
}

void BftReplica::note_executed_id(std::int64_t id) {
  if (executed_.empty() || std::prev(executed_.end())->first < id) {
    digest_chain_ = state_digest_extend(digest_chain_, id);
  } else {
    digest_dirty_ = true;
  }
}

std::int64_t BftReplica::current_digest() {
  if (digest_dirty_) {
    std::uint64_t h = kStateDigestSeed;
    for (const auto& [id, client] : executed_) {
      (void)client;
      h = state_digest_extend(h, id);
    }
    digest_chain_ = h;
    digest_dirty_ = false;
  }
  return state_digest_fold(digest_chain_);
}

void BftReplica::maybe_broadcast_checkpoint() {
  if (++executions_since_checkpoint_ < options_.checkpoint_interval) return;
  executions_since_checkpoint_ = 0;
  const auto count = static_cast<std::int64_t>(executed_.size());
  const std::int64_t digest = current_digest();
  if (monitor_ != nullptr) {
    monitor_->on_checkpoint(self_, group_id_, count, digest);
  }
  Message vote;
  vote.type = Message::Type::kCheckpoint;
  vote.seq = count;
  vote.value = digest;
  broadcast_to_group(vote);
  tally_checkpoint_vote(index_, count, digest);
}

void BftReplica::on_checkpoint_vote(const Message& msg) {
  const int voter_index = member_index(msg.sender);
  if (voter_index < 0) return;  // not a group member
  tally_checkpoint_vote(voter_index, msg.seq, msg.value);
}

void BftReplica::tally_checkpoint_vote(int voter_index, std::int64_t count,
                                       std::int64_t digest) {
  if (count <= stable_count_) return;  // already superseded
  VoteMask& votes = checkpoint_votes_[{count, digest}];
  votes.insert(voter_index);
  // f+1 matching votes cannot all come from faulty replicas, so the
  // certificate is vouched for by at least one correct execution history.
  if (votes.count() < options_.f + 1) return;
  stable_count_ = count;
  stable_digest_ = digest;
  ++checkpoints_formed_;
  gc_below_stable();
  if (sim_.tracing()) {
    sim_.trace(to_string(self_) + " stable checkpoint at count " +
               std::to_string(count));
  }
}

void BftReplica::gc_below_stable() {
  // Ordering state for executed requests is redundant once a checkpoint
  // covering them is stable: a re-proposal of a reclaimed id simply
  // re-votes (execution stays idempotent), so dropping the dedup sets is
  // safe and keeps per-request state bounded by the checkpoint interval.
  checkpoint_votes_.erase_if([this](const auto& entry) {
    return entry.first.first <= stable_count_;
  });
  // executed_ and the dedup structures are all sorted by request id, so
  // the old per-id erase loop collapses into monotone-cursor sweeps.
  auto voted_cursor = executed_.begin();
  voted_.erase_if([&](const std::int64_t id) {
    while (voted_cursor != executed_.end() && voted_cursor->first < id) {
      ++voted_cursor;
    }
    return voted_cursor != executed_.end() && voted_cursor->first == id;
  });
  auto announced_cursor = executed_.begin();
  announced_view_.erase_if([&](const auto& entry) {
    while (announced_cursor != executed_.end() &&
           announced_cursor->first < entry.first) {
      ++announced_cursor;
    }
    return announced_cursor != executed_.end() &&
           announced_cursor->first == entry.first;
  });
}

void BftReplica::propose_pending() {
  if (!active_ || recovering_ || catching_up_ || passive_) return;
  // Snapshot: voting for our own proposal below can complete a quorum and
  // execute the request, which erases it from pending_ — iterating the
  // live map would be invalidated mid-loop.
  std::vector<std::int64_t> pending_ids;
  pending_ids.reserve(pending_.size());
  for (const auto& [request_id, client] : pending_) {
    pending_ids.push_back(request_id);
  }
  for (const std::int64_t request_id : pending_ids) {
    if (!pending_.contains(request_id)) continue;  // executed meanwhile
    if (proposed_this_view_.contains(request_id)) continue;
    proposed_this_view_.insert(request_id);
    Message proposal;
    proposal.type = Message::Type::kProposal;
    proposal.view = view_;
    proposal.seq = next_seq_++;
    proposal.request_id = request_id;
    broadcast_to_group(proposal);
    // The leader votes for its own proposal.
    Message own_accept = proposal;
    own_accept.type = Message::Type::kAccept;
    own_accept.sender = self_;
    on_accept(own_accept);
    broadcast_to_group(own_accept);
  }
}

void BftReplica::on_proposal(const Message& msg) {
  const NodeAddr expected_leader = group_[static_cast<std::size_t>(
      msg.view % static_cast<std::int64_t>(group_.size()))];
  if (!(msg.sender == expected_leader)) return;  // not from that view's leader
  if (msg.view < view_) return;                  // stale view
  if (voted_.contains(msg.request_id)) {
    // Re-proposal after a view change: re-announce the vote so the new
    // leader's quorum can form — at most once per (request, view), or a
    // lossy network can whip re-proposals into a broadcast storm.
    const auto announced = announced_view_.find(msg.request_id);
    if (announced != announced_view_.end() && announced->second >= msg.view) {
      return;
    }
    announced_view_[msg.request_id] = msg.view;
    Message accept = msg;
    accept.type = Message::Type::kAccept;
    broadcast_to_group(accept);
    return;
  }
  voted_.insert(msg.request_id);
  Message accept = msg;
  accept.type = Message::Type::kAccept;
  // Vote for it ourselves, then tell the group.
  Message own = accept;
  own.sender = self_;
  on_accept(own);
  broadcast_to_group(accept);
}

void BftReplica::on_accept(const Message& msg) {
  if (executed_contains(msg.request_id)) return;
  const int voter_index = member_index(msg.sender);
  if (voter_index < 0) return;  // not a group member
  VoteMask& votes = accept_votes_[msg.request_id];
  votes.insert(voter_index);
  if (votes.count() >= quorum_) {
    execute(msg.request_id, msg.view, msg.seq);
  }
}

void BftReplica::execute(std::int64_t request_id, std::int64_t view,
                         std::int64_t seq) {
  const auto pending = pending_.find(request_id);
  NodeAddr client{};
  bool have_client = false;
  if (pending != pending_.end()) {
    client = pending->second;
    have_client = true;
    pending_.erase(pending);
  }
  note_executed_id(request_id);
  executed_[request_id] = client;
  advance_executed_prefix(request_id);
  accept_votes_.erase(request_id);
  last_progress_ = sim_.now();
  if (monitor_ != nullptr && !compromised_) {
    monitor_->on_execute(self_, group_id_, view, seq, request_id);
  }
  if (have_client) {
    Message reply;
    reply.type = Message::Type::kReply;
    reply.request_id = request_id;
    reply.value = request_id;
    net_.send(self_, client, reply);
  }
  maybe_broadcast_checkpoint();
}

void BftReplica::on_view_change(const Message& msg) {
  if (msg.view <= view_) return;
  const int voter_index = member_index(msg.sender);
  if (voter_index < 0) return;
  VoteMask& votes = view_votes_[msg.view];
  votes.insert(voter_index);
  // Join a higher view once f+1 members vouch for it (they cannot all be
  // faulty), without waiting for our own timeout.
  if (votes.count() >= options_.f + 1) {
    view_ = msg.view;
    last_progress_ = sim_.now();
    view_votes_.erase_upto(view_);
    proposed_this_view_.clear();
    if (is_leader()) propose_pending();
  }
}

void BftReplica::watchdog_loop() {
  if (active_ && !recovering_ && !compromised_ && !catching_up_ &&
      !passive_ && !pending_.empty() &&
      sim_.now() - last_progress_ > options_.view_timeout_s * timeout_scale_) {
    ++view_;
    last_progress_ = sim_.now();
    proposed_this_view_.clear();
    if (sim_.tracing()) {
      sim_.trace(to_string(self_) + " view change to " +
                 std::to_string(view_));
    }
    Message vc;
    vc.type = Message::Type::kViewChange;
    vc.view = view_;
    broadcast_to_group(vc);
    if (is_leader()) propose_pending();
  }
  sim_.schedule_in(1.0, [this] { watchdog_loop(); });
}

RecoveryScheduler::RecoveryScheduler(Simulator& sim,
                                     std::vector<BftReplica*> replicas,
                                     BftOptions options)
    : sim_(sim), replicas_(std::move(replicas)), options_(options) {
  for (BftReplica* r : replicas_) {
    if (r == nullptr) {
      throw std::invalid_argument("RecoveryScheduler: null replica");
    }
  }
}

void RecoveryScheduler::start(double start_s) {
  if (replicas_.empty() || options_.k <= 0) return;
  sim_.schedule_at(start_s, [this] { rotate(); });
}

void RecoveryScheduler::rotate() {
  BftReplica* replica = replicas_[next_];
  next_ = (next_ + 1) % replicas_.size();
  replica->begin_recovery();
  sim_.schedule_in(options_.recovery_duration_s,
                   [replica] { replica->end_recovery(); });
  sim_.schedule_in(options_.recovery_period_s, [this] { rotate(); });
}

std::vector<NodeAddr> interleaved_group(
    const std::vector<int>& sites, const std::vector<int>& replicas_per_site) {
  if (sites.size() != replicas_per_site.size()) {
    throw std::invalid_argument("interleaved_group: size mismatch");
  }
  std::vector<NodeAddr> out;
  int max_replicas = 0;
  for (const int n : replicas_per_site) max_replicas = std::max(max_replicas, n);
  for (int round = 0; round < max_replicas; ++round) {
    for (std::size_t s = 0; s < sites.size(); ++s) {
      if (round < replicas_per_site[s]) {
        out.push_back({sites[s], round});
      }
    }
  }
  return out;
}

}  // namespace ct::sim
