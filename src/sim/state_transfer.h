// Checkpointing, state transfer, and rejoin catch-up for the replication
// stacks. Replicas periodically agree on a checkpoint of the executed set
// (count + order-canonical digest); a replica returning from proactive
// recovery, a crash/restart, a site flap, or cold activation catches up by
// asking its peers for the latest stable checkpoint plus the executed tail
// and installing it once enough peers vouch for the same certificate.
// Transfers run under a per-round timeout with capped exponential backoff
// and a bounded retry budget; exhausting the budget degrades the replica
// to passive instead of wedging the group. BackoffPolicy is the shared
// retry schedule used by every acked/retried path in the simulator (state
// transfer, failover activation, client retransmission).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/flat.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace ct::sim {

/// Capped exponential backoff with optional deterministic seeded jitter.
struct BackoffPolicy {
  double initial_s = 2.0;
  double multiplier = 2.0;
  double cap_s = 30.0;
  /// When an Rng is supplied, each delay is padded by a uniform draw in
  /// [0, jitter_fraction * delay) so synchronized retriers de-correlate.
  double jitter_fraction = 0.0;

  /// Delay before retry number `attempt` (0-based: attempt 0 waits
  /// `initial_s`, each further attempt multiplies, capped at `cap_s`).
  double delay(int attempt, util::Rng* rng = nullptr) const;
};

/// Order-canonical digest of an executed-request-id set (FNV-1a over the
/// sorted ids, folded to a non-negative int64 so it rides in a Message
/// field). The empty set has a well-defined digest.
std::int64_t state_digest(const std::vector<std::int64_t>& sorted_ids);

/// Incremental form of state_digest, exposed so a replica executing mostly
/// in ascending id order can extend a running chain instead of rehashing
/// its whole executed set per checkpoint:
///   state_digest(ids) == state_digest_fold(extend(extend(kSeed, ids[0])...))
inline constexpr std::uint64_t kStateDigestSeed = 14695981039346656037ull;

inline std::uint64_t state_digest_extend(std::uint64_t h,
                                         std::int64_t id) noexcept {
  auto u = static_cast<std::uint64_t>(id);
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (u >> (byte * 8)) & 0xffull;
    h *= 1099511628211ull;
  }
  return h;
}

inline std::int64_t state_digest_fold(std::uint64_t h) noexcept {
  return static_cast<std::int64_t>(h & 0x7fffffffffffffffull);
}

/// Per-replica rejoin accounting, aggregated into DesOutcome.
struct RejoinStats {
  int rejoins = 0;          ///< Catch-up transfers that installed state.
  int failures = 0;         ///< Transfers that exhausted the retry budget.
  int retry_rounds = 0;     ///< Extra transfer rounds beyond the first.
  double max_catchup_s = 0.0;  ///< Slowest successful catch-up.
};

/// Retry/backoff parameters for one replica's catch-up transfers.
struct StateTransferOptions {
  /// How long one round waits for matching replies before retrying.
  double round_timeout_s = 4.0;
  /// Backoff between failed rounds.
  BackoffPolicy backoff{2.0, 2.0, 16.0, 0.0};
  /// Rounds before the transfer is declared failed (graceful degradation).
  int max_rounds = 4;
};

/// Drives one replica's rejoin catch-up: broadcasts kStateRequest,
/// accumulates kStateReply messages across retry rounds, and installs once
/// `matching_needed` distinct peers vouch for the same checkpoint
/// certificate (count, digest). The installed id set is the ids present in
/// at least `matching_needed` of the matching replies, so a single stale
/// or lying tail cannot slip divergent state past the rejoiner.
class StateTransferClient {
 public:
  struct Result {
    /// Ids vouched for by >= matching_needed matching replies (sorted).
    std::vector<std::int64_t> ids;
    /// The agreed checkpoint certificate.
    std::int64_t count = 0;
    std::int64_t digest = 0;
    int rounds = 1;
    double elapsed_s = 0.0;
  };

  struct Callbacks {
    /// Sends one round's kStateRequest(s); `epoch` must ride in
    /// Message::request_id so replies can be matched to this transfer.
    std::function<void(std::int64_t epoch)> send_request;
    /// Enough matching replies arrived; install the result.
    std::function<void(const Result&)> install;
    /// The retry budget is exhausted; degrade.
    std::function<void(int rounds)> fail;
  };

  StateTransferClient(Simulator& sim, StateTransferOptions options,
                      int matching_needed, Callbacks callbacks);

  /// Starts (or restarts) a transfer with a fresh epoch and a fresh retry
  /// budget. Any in-flight transfer is superseded.
  void begin();
  /// Cancels an in-flight transfer (counts as neither success nor failure).
  void abort();
  /// Feeds a kStateReply; stale-epoch and duplicate-sender replies are
  /// ignored, fresh ones may complete the transfer.
  void on_reply(const Message& msg);

  bool in_progress() const noexcept { return in_progress_; }
  std::int64_t epoch() const noexcept { return epoch_; }

  // Lifetime accounting (summed over every transfer this client ran).
  int transfers_completed() const noexcept { return completed_; }
  int transfers_failed() const noexcept { return failed_; }
  /// Rounds beyond the first, summed over all transfers (retry pressure).
  int retry_rounds() const noexcept { return retry_rounds_; }
  /// Longest begin()-to-install latency observed (s).
  double max_catchup_s() const noexcept { return max_catchup_s_; }

 private:
  struct Reply {
    std::int64_t count = 0;
    std::int64_t digest = 0;
    std::vector<std::int64_t> ids;
  };

  void send_round();
  void round_timed_out(std::int64_t epoch, int round);
  void try_complete();

  Simulator& sim_;
  StateTransferOptions options_;
  int matching_needed_;
  Callbacks callbacks_;

  bool in_progress_ = false;
  std::int64_t epoch_ = 0;
  int round_ = 0;
  double started_at_ = 0.0;
  /// Distinct sender -> latest reply (accumulated across rounds). Flat
  /// sorted map: a handful of peers, touched per kStateReply.
  FlatMap<std::pair<int, int>, Reply> replies_;

  int completed_ = 0;
  int failed_ = 0;
  int retry_rounds_ = 0;
  double max_catchup_s_ = 0.0;
};

}  // namespace ct::sim
