// Intrusion-tolerant (BFT) SCADA masters: a leader-based ordering protocol
// with quorum ceil((n+f+1)/2), unilateral-timeout view changes, and
// round-robin proactive recovery (one replica at a time, the "k" of the
// paper's "6" configuration). Compromised replicas are worst-case: they
// contribute nothing to ordering and race forged replies to the client;
// only f+1 colluding forgeries can deceive the client (gray state).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/flat.h"
#include "sim/invariants.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/state_transfer.h"

namespace ct::sim {

struct BftOptions {
  /// Intrusions tolerated by the group.
  int f = 1;
  /// Replicas concurrently in proactive recovery.
  int k = 1;
  /// Leader-silence timeout before a replica moves to the next view.
  double view_timeout_s = 10.0;
  /// Proactive recovery cadence: every period one replica recovers for
  /// `recovery_duration_s` (round-robin).
  double recovery_period_s = 120.0;
  double recovery_duration_s = 20.0;
  /// Cold-group activation delay (for the backup group of "6-6").
  double activation_delay_s = 300.0;
  /// Executions between checkpoint votes; a checkpoint becomes stable once
  /// f+1 replicas vote for the same (count, digest).
  int checkpoint_interval = 8;
  /// Retry/backoff budget for rejoin catch-up transfers.
  StateTransferOptions state_transfer{};
};

/// One BFT SCADA master replica.
class BftReplica {
 public:
  /// `group` lists every member's address; `index` is this replica's slot
  /// in it. The leader of view v is group[v mod n]. Interleave sites in the
  /// group order so consecutive views land on different sites.
  BftReplica(Simulator& sim, Network& net, NodeAddr self,
             std::vector<NodeAddr> group, int index, BftOptions options,
             bool group_initially_active);

  void set_compromised(bool compromised) noexcept;
  bool compromised() const noexcept { return compromised_; }

  /// Proactive recovery control (driven by RecoveryScheduler).
  void begin_recovery();
  void end_recovery();
  bool recovering() const noexcept { return recovering_; }

  /// Fault injection: the node's host just came back from a crash or site
  /// flap — re-enter the group through a catch-up transfer.
  void on_restart();

  /// Wires the invariant monitor; `group_id` distinguishes replication
  /// groups when a configuration runs several.
  void set_monitor(InvariantMonitor* monitor, int group_id) noexcept {
    monitor_ = monitor;
    group_id_ = group_id;
  }

  /// Fault injection: scales the view-change timeout (clock skew).
  void set_timeout_scale(double scale) noexcept { timeout_scale_ = scale; }
  double timeout_scale() const noexcept { return timeout_scale_; }

  /// Starts the view watchdog. Call once before the run.
  void start();

  std::int64_t view() const noexcept { return view_; }
  bool group_active() const noexcept { return active_; }
  std::size_t executed_count() const noexcept { return executed_.size(); }

  /// True while a catch-up transfer is in flight (replica overhears the
  /// ordering protocol and answers state requests, but does not serve
  /// clients or propose).
  bool catching_up() const noexcept { return catching_up_; }
  /// True after a catch-up transfer exhausted its retry budget: the
  /// replica has degraded out of the group instead of wedging it.
  bool passive() const noexcept { return passive_; }
  /// Latest stable checkpoint certificate this replica holds.
  std::int64_t stable_checkpoint_count() const noexcept { return stable_count_; }
  /// Stable checkpoints this replica saw form (f+1 matching votes).
  int checkpoints_formed() const noexcept { return checkpoints_formed_; }
  RejoinStats rejoin_stats() const;

 private:
  /// Group index of `a`, or -1 when `a` is not a member. Dense (site,
  /// node) table built at construction — every vote tally hits this, so
  /// it must not be the linear group scan it replaces.
  int member_index(NodeAddr a) const noexcept {
    const auto key = static_cast<std::size_t>(a.site) * lut_stride_ +
                     static_cast<std::size_t>(a.node);
    return a.site >= 0 && a.node >= 0 && key < member_lut_.size()
               ? member_lut_[key]
               : -1;
  }

  void on_message(const Message& msg);
  void on_request(const Message& msg);
  void on_proposal(const Message& msg);
  void on_accept(const Message& msg);
  void on_view_change(const Message& msg);
  void on_checkpoint_vote(const Message& msg);
  void on_state_request(const Message& msg);
  void watchdog_loop();
  void propose_pending();
  void broadcast_to_group(const Message& msg);
  bool is_leader() const;
  void execute(std::int64_t request_id, std::int64_t view, std::int64_t seq);
  /// Current executed set as a sorted id list (checkpoint/transfer input).
  std::vector<std::int64_t> executed_ids() const;
  /// Records `id` entering executed_ in the running digest chain (or marks
  /// the chain dirty when the insert is out of order).
  void note_executed_id(std::int64_t id);
  /// Digest of the current executed set; serves the cached chain unless an
  /// out-of-order insert invalidated it.
  std::int64_t current_digest();
  void maybe_broadcast_checkpoint();
  void tally_checkpoint_vote(int voter_index, std::int64_t count,
                             std::int64_t digest);
  /// Reclaims per-request ordering state made redundant by the stable
  /// checkpoint (re-proposals of reclaimed ids simply re-vote).
  void gc_below_stable();
  void begin_catchup(const char* reason);
  void install_state(const StateTransferClient::Result& result);
  void catchup_failed(int rounds);

  Simulator& sim_;
  Network& net_;
  NodeAddr self_;
  std::vector<NodeAddr> group_;
  std::vector<std::int8_t> member_lut_;  // (site, node) -> group index
  std::size_t lut_stride_ = 0;
  int index_;
  BftOptions options_;
  int quorum_;
  bool active_;
  bool activation_pending_ = false;
  bool compromised_ = false;
  bool recovering_ = false;
  bool catching_up_ = false;
  bool passive_ = false;
  InvariantMonitor* monitor_ = nullptr;
  int group_id_ = 0;
  double timeout_scale_ = 1.0;

  std::int64_t view_ = 0;
  std::int64_t next_seq_ = 0;
  double last_progress_ = 0.0;

  // Per-request bookkeeping lives in flat sorted vectors with fixed-width
  // voter bitmasks (group size <= 64, enforced at construction): GC below
  // the stable checkpoint keeps these a handful of entries, and the flat
  // layout removes the per-node heap traffic the std::map/std::set
  // originals paid on every vote.
  /// request id -> client address (pending, not yet executed).
  FlatMap<std::int64_t, NodeAddr> pending_;
  /// request id -> distinct accept voters.
  FlatMap<std::int64_t, VoteMask> accept_votes_;
  /// proposals this replica has already voted for (request ids).
  FlatSet<std::int64_t> voted_;
  /// requests this leader already proposed in the current view (cleared on
  /// view change) — prevents re-proposal storms.
  FlatSet<std::int64_t> proposed_this_view_;
  /// highest view in which this replica re-announced its vote per request
  /// — bounds vote re-broadcasts to one per (request, view).
  FlatMap<std::int64_t, std::int64_t> announced_view_;
  /// executed request ids -> client address (for late replies).
  FlatMap<std::int64_t, NodeAddr> executed_;
  /// Every id in [1, executed_prefix_] is executed. Client ids are handed
  /// out sequentially from 1 and quorums complete roughly in order, so the
  /// prefix covers almost the whole executed set — the O(1) reject for the
  /// ~n-1 late accepts that trail every execution. Ids above the prefix
  /// fall back to the binary search.
  std::int64_t executed_prefix_ = 0;
  bool executed_contains(std::int64_t id) const {
    return id <= executed_prefix_ || executed_.contains(id);
  }
  /// Advances the prefix after `id` was inserted into executed_.
  void advance_executed_prefix(std::int64_t id);
  /// view -> distinct view-change voters (for catching up).
  FlatMap<std::int64_t, VoteMask> view_votes_;

  /// Latest stable checkpoint certificate (f+1 matching votes).
  std::int64_t stable_count_ = 0;
  std::int64_t stable_digest_ = 0;
  /// Running FNV chain over executed_ in sorted order. Executions land in
  /// ascending id order almost always, so the per-checkpoint digest is an
  /// O(1) fold of this chain; an out-of-order insert (catch-up install,
  /// straggler commit) marks it dirty and the next use rehashes once.
  std::uint64_t digest_chain_ = kStateDigestSeed;
  bool digest_dirty_ = false;
  int executions_since_checkpoint_ = 0;
  int checkpoints_formed_ = 0;
  /// (count, digest) -> distinct checkpoint voters.
  FlatMap<std::pair<std::int64_t, std::int64_t>, VoteMask> checkpoint_votes_;
  /// Drives rejoin catch-up after recovery / restart / cold activation.
  std::unique_ptr<StateTransferClient> transfer_;
};

/// Rotates proactive recovery through a group of replicas (k = 1).
class RecoveryScheduler {
 public:
  RecoveryScheduler(Simulator& sim, std::vector<BftReplica*> replicas,
                    BftOptions options);

  /// Starts the rotation at `start_s`.
  void start(double start_s);

 private:
  void rotate();

  Simulator& sim_;
  std::vector<BftReplica*> replicas_;
  BftOptions options_;
  std::size_t next_ = 0;
};

/// Builds a group order that interleaves sites: given per-site replica
/// counts, yields addresses so consecutive entries cycle across sites —
/// keeping consecutive view leaders in different sites.
std::vector<NodeAddr> interleaved_group(const std::vector<int>& sites,
                                        const std::vector<int>& replicas_per_site);

}  // namespace ct::sim
