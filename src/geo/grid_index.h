// Uniform-grid spatial index over planar points. The mesh uses it for
// nearest-node queries (asset -> mesh node lookup happens for every asset in
// every one of the 1000 realizations, so brute force would dominate).
#pragma once

#include <cstddef>
#include <vector>

#include "geo/polygon.h"
#include "geo/vec2.h"

namespace ct::geo {

/// Index over a fixed point set. Points are bucketed into square cells of
/// `cell_size` meters; queries expand outward ring by ring, which is exact
/// for nearest-neighbor (a candidate is accepted only once the searched
/// radius covers its distance).
class GridIndex {
 public:
  /// Builds the index. `cell_size` must be positive; the box is derived
  /// from the points.
  GridIndex(const std::vector<Vec2>& points, double cell_size);

  /// Index of the nearest point, or npos when the set is empty.
  std::size_t nearest(Vec2 query) const noexcept;

  /// All point indices within `radius` of `query` (unordered).
  std::vector<std::size_t> within(Vec2 query, double radius) const;

  /// Allocation-free variant for hot callers: clears `out` and appends the
  /// indices within `radius`. Reusing one `out` vector across queries makes
  /// steady-state lookups allocation-free once its capacity has grown.
  void within(Vec2 query, double radius, std::vector<std::size_t>& out) const;

  std::size_t size() const noexcept { return points_.size(); }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  struct Cell {
    std::vector<std::size_t> items;
  };

  std::size_t cell_of(Vec2 p) const noexcept;
  void cell_coords(Vec2 p, std::ptrdiff_t& cx, std::ptrdiff_t& cy) const noexcept;

  std::vector<Vec2> points_;
  double cell_size_;
  BBox bbox_;
  std::ptrdiff_t nx_ = 0;
  std::ptrdiff_t ny_ = 0;
  std::vector<Cell> cells_;
};

}  // namespace ct::geo
