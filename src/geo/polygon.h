// Planar polygon and polyline geometry: containment, area, distance.
// Used for the island outline (land mask) and the shoreline polyline.
#pragma once

#include <optional>
#include <vector>

#include "geo/vec2.h"

namespace ct::geo {

/// Axis-aligned bounding box.
struct BBox {
  Vec2 lo{1e300, 1e300};
  Vec2 hi{-1e300, -1e300};

  void expand(Vec2 p) noexcept;
  void expand(const BBox& other) noexcept;
  bool contains(Vec2 p) const noexcept;
  bool valid() const noexcept { return lo.x <= hi.x && lo.y <= hi.y; }
  Vec2 center() const noexcept { return (lo + hi) * 0.5; }
  double width() const noexcept { return hi.x - lo.x; }
  double height() const noexcept { return hi.y - lo.y; }
  /// Grows the box by `margin` on every side.
  BBox inflated(double margin) const noexcept;
};

/// Simple polygon (implicitly closed: last vertex connects to first).
/// Vertices may be in either winding order; `area()` is signed,
/// `abs_area()` and `contains()` are orientation-independent.
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Vec2> vertices);

  const std::vector<Vec2>& vertices() const noexcept { return vertices_; }
  std::size_t size() const noexcept { return vertices_.size(); }
  bool empty() const noexcept { return vertices_.empty(); }

  /// Even-odd (ray casting) point-in-polygon test. Points exactly on an
  /// edge may fall on either side; the terrain substrate never relies on
  /// boundary-exact classification.
  bool contains(Vec2 p) const noexcept;

  /// Signed area (positive for counter-clockwise winding).
  double area() const noexcept;
  double abs_area() const noexcept;
  Vec2 centroid() const noexcept;
  const BBox& bbox() const noexcept { return bbox_; }

  /// Minimum distance from `p` to the polygon boundary (0 inside is NOT
  /// implied — this is the distance to the outline in both directions).
  double distance_to_boundary(Vec2 p) const noexcept;

 private:
  std::vector<Vec2> vertices_;
  BBox bbox_;
};

/// Open polyline.
class LineString {
 public:
  LineString() = default;
  explicit LineString(std::vector<Vec2> points);

  const std::vector<Vec2>& points() const noexcept { return points_; }
  std::size_t size() const noexcept { return points_.size(); }
  bool empty() const noexcept { return points_.empty(); }
  double length() const noexcept;

  /// Closest point on the polyline to `p` (nullopt when empty).
  std::optional<Vec2> nearest_point(Vec2 p) const noexcept;
  /// Distance from `p` to the polyline (+inf when empty).
  double distance(Vec2 p) const noexcept;

  /// Point at arc-length `s` from the start, clamped to [0, length].
  Vec2 at_arclength(double s) const;

 private:
  std::vector<Vec2> points_;
};

/// Closest point on segment [a,b] to p.
Vec2 closest_point_on_segment(Vec2 a, Vec2 b, Vec2 p) noexcept;

/// Convex hull of a point set (Andrew's monotone chain), counter-clockwise,
/// without the closing duplicate. Returns the input for fewer than 3
/// points. Collinear boundary points are dropped.
std::vector<Vec2> convex_hull(std::vector<Vec2> points);

}  // namespace ct::geo
