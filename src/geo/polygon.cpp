#include "geo/polygon.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ct::geo {

void BBox::expand(Vec2 p) noexcept {
  lo.x = std::min(lo.x, p.x);
  lo.y = std::min(lo.y, p.y);
  hi.x = std::max(hi.x, p.x);
  hi.y = std::max(hi.y, p.y);
}

void BBox::expand(const BBox& other) noexcept {
  if (!other.valid()) return;
  expand(other.lo);
  expand(other.hi);
}

bool BBox::contains(Vec2 p) const noexcept {
  return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
}

BBox BBox::inflated(double margin) const noexcept {
  BBox out = *this;
  out.lo.x -= margin;
  out.lo.y -= margin;
  out.hi.x += margin;
  out.hi.y += margin;
  return out;
}

Polygon::Polygon(std::vector<Vec2> vertices) : vertices_(std::move(vertices)) {
  if (vertices_.size() < 3) {
    throw std::invalid_argument("Polygon requires >= 3 vertices");
  }
  for (const Vec2 v : vertices_) bbox_.expand(v);
}

bool Polygon::contains(Vec2 p) const noexcept {
  if (!bbox_.contains(p)) return false;
  bool inside = false;
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const Vec2 a = vertices_[i];
    const Vec2 b = vertices_[j];
    const bool straddles = (a.y > p.y) != (b.y > p.y);
    if (straddles) {
      const double x_cross = (b.x - a.x) * (p.y - a.y) / (b.y - a.y) + a.x;
      if (p.x < x_cross) inside = !inside;
    }
  }
  return inside;
}

double Polygon::area() const noexcept {
  double twice_area = 0.0;
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    twice_area += vertices_[j].cross(vertices_[i]);
  }
  return twice_area / 2.0;
}

double Polygon::abs_area() const noexcept { return std::abs(area()); }

Vec2 Polygon::centroid() const noexcept {
  // Area-weighted centroid; falls back to vertex mean for degenerate area.
  double twice_area = 0.0;
  Vec2 acc{};
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const double w = vertices_[j].cross(vertices_[i]);
    twice_area += w;
    acc += (vertices_[j] + vertices_[i]) * w;
  }
  if (std::abs(twice_area) < 1e-12) {
    Vec2 mean{};
    for (const Vec2 v : vertices_) mean += v;
    return mean / static_cast<double>(n);
  }
  return acc / (3.0 * twice_area);
}

double Polygon::distance_to_boundary(Vec2 p) const noexcept {
  double best = std::numeric_limits<double>::infinity();
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const Vec2 q = closest_point_on_segment(vertices_[j], vertices_[i], p);
    best = std::min(best, distance(p, q));
  }
  return best;
}

LineString::LineString(std::vector<Vec2> points) : points_(std::move(points)) {}

double LineString::length() const noexcept {
  double total = 0.0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    total += ct::geo::distance(points_[i - 1], points_[i]);
  }
  return total;
}

std::optional<Vec2> LineString::nearest_point(Vec2 p) const noexcept {
  if (points_.empty()) return std::nullopt;
  if (points_.size() == 1) return points_.front();
  Vec2 best = points_.front();
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const Vec2 q = closest_point_on_segment(points_[i - 1], points_[i], p);
    const double d2 = (q - p).norm2();
    if (d2 < best_d2) {
      best_d2 = d2;
      best = q;
    }
  }
  return best;
}

double LineString::distance(Vec2 p) const noexcept {
  const auto q = nearest_point(p);
  if (!q) return std::numeric_limits<double>::infinity();
  return ct::geo::distance(p, *q);
}

Vec2 LineString::at_arclength(double s) const {
  if (points_.empty()) throw std::logic_error("LineString::at_arclength empty");
  if (s <= 0.0) return points_.front();
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const double seg = ct::geo::distance(points_[i - 1], points_[i]);
    if (s <= seg && seg > 0.0) {
      return points_[i - 1] + (points_[i] - points_[i - 1]) * (s / seg);
    }
    s -= seg;
  }
  return points_.back();
}

std::vector<Vec2> convex_hull(std::vector<Vec2> points) {
  if (points.size() < 3) return points;
  std::sort(points.begin(), points.end(), [](Vec2 a, Vec2 b) {
    return a.x != b.x ? a.x < b.x : a.y < b.y;
  });
  points.erase(std::unique(points.begin(), points.end()), points.end());
  if (points.size() < 3) return points;

  std::vector<Vec2> hull(2 * points.size());
  std::size_t k = 0;
  // Lower hull.
  for (const Vec2 p : points) {
    while (k >= 2 &&
           (hull[k - 1] - hull[k - 2]).cross(p - hull[k - 2]) <= 0.0) {
      --k;
    }
    hull[k++] = p;
  }
  // Upper hull.
  const std::size_t lower_size = k + 1;
  for (std::size_t i = points.size() - 1; i-- > 0;) {
    const Vec2 p = points[i];
    while (k >= lower_size &&
           (hull[k - 1] - hull[k - 2]).cross(p - hull[k - 2]) <= 0.0) {
      --k;
    }
    hull[k++] = p;
  }
  hull.resize(k - 1);  // last point equals the first
  return hull;
}

Vec2 closest_point_on_segment(Vec2 a, Vec2 b, Vec2 p) noexcept {
  const Vec2 ab = b - a;
  const double len2 = ab.norm2();
  if (len2 <= 0.0) return a;
  const double t = std::clamp((p - a).dot(ab) / len2, 0.0, 1.0);
  return a + ab * t;
}

}  // namespace ct::geo
