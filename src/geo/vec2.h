// 2-D vector in local planar (meter) coordinates.
#pragma once

#include <cmath>

namespace ct::geo {

/// Planar vector/point; x is east, y is north (meters) in ENU frames.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2 operator+(Vec2 o) const noexcept { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const noexcept { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const noexcept { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const noexcept { return {x / s, y / s}; }
  constexpr Vec2& operator+=(Vec2 o) noexcept {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(Vec2 o) noexcept {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr bool operator==(const Vec2&) const noexcept = default;

  constexpr double dot(Vec2 o) const noexcept { return x * o.x + y * o.y; }
  /// z-component of the 3-D cross product; positive when `o` is
  /// counter-clockwise from *this.
  constexpr double cross(Vec2 o) const noexcept { return x * o.y - y * o.x; }
  double norm() const noexcept { return std::sqrt(x * x + y * y); }
  constexpr double norm2() const noexcept { return x * x + y * y; }
  /// Unit vector; the zero vector normalizes to zero.
  Vec2 normalized() const noexcept {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }
  /// Rotated 90 degrees counter-clockwise.
  constexpr Vec2 perp() const noexcept { return {-y, x}; }
};

constexpr Vec2 operator*(double s, Vec2 v) noexcept { return v * s; }

inline double distance(Vec2 a, Vec2 b) noexcept { return (a - b).norm(); }

}  // namespace ct::geo
