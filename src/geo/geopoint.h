// Geographic coordinates and the local planar projection used by the
// terrain/mesh/surge substrates. Oahu spans ~0.5 degrees, so an
// equirectangular East-North-Up projection about a reference point is
// accurate to well under 0.1% over the study area.
#pragma once

#include "geo/vec2.h"

namespace ct::geo {

/// Mean Earth radius (meters), IUGG value.
inline constexpr double kEarthRadiusM = 6371008.8;

/// WGS-style geographic point in decimal degrees.
/// Latitude positive north, longitude positive east (Oahu ~ -158).
struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  constexpr bool operator==(const GeoPoint&) const noexcept = default;
};

double deg_to_rad(double deg) noexcept;
double rad_to_deg(double rad) noexcept;

/// Great-circle distance in meters (haversine formula).
double haversine_m(GeoPoint a, GeoPoint b) noexcept;

/// Initial bearing from `a` to `b`, degrees clockwise from north in [0,360).
double initial_bearing_deg(GeoPoint a, GeoPoint b) noexcept;

/// Point reached from `start` travelling `distance_m` along `bearing_deg`
/// on a sphere.
GeoPoint destination(GeoPoint start, double bearing_deg,
                     double distance_m) noexcept;

/// Equirectangular ENU projection centered on a reference point.
/// x = east meters, y = north meters relative to the reference.
class EnuProjection {
 public:
  explicit EnuProjection(GeoPoint reference) noexcept;

  Vec2 to_enu(GeoPoint p) const noexcept;
  GeoPoint to_geo(Vec2 enu) const noexcept;
  GeoPoint reference() const noexcept { return ref_; }

 private:
  GeoPoint ref_;
  double cos_ref_lat_;
};

}  // namespace ct::geo
