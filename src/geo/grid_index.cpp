#include "geo/grid_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ct::geo {

GridIndex::GridIndex(const std::vector<Vec2>& points, double cell_size)
    : points_(points), cell_size_(cell_size) {
  if (cell_size <= 0.0) {
    throw std::invalid_argument("GridIndex: cell_size must be positive");
  }
  for (const Vec2 p : points_) bbox_.expand(p);
  if (points_.empty()) {
    bbox_ = BBox{{0, 0}, {0, 0}};
  }
  nx_ = std::max<std::ptrdiff_t>(
      1, static_cast<std::ptrdiff_t>(std::ceil(bbox_.width() / cell_size_)) + 1);
  ny_ = std::max<std::ptrdiff_t>(
      1,
      static_cast<std::ptrdiff_t>(std::ceil(bbox_.height() / cell_size_)) + 1);
  cells_.resize(static_cast<std::size_t>(nx_ * ny_));
  for (std::size_t i = 0; i < points_.size(); ++i) {
    cells_[cell_of(points_[i])].items.push_back(i);
  }
}

void GridIndex::cell_coords(Vec2 p, std::ptrdiff_t& cx,
                            std::ptrdiff_t& cy) const noexcept {
  cx = static_cast<std::ptrdiff_t>(std::floor((p.x - bbox_.lo.x) / cell_size_));
  cy = static_cast<std::ptrdiff_t>(std::floor((p.y - bbox_.lo.y) / cell_size_));
  cx = std::clamp<std::ptrdiff_t>(cx, 0, nx_ - 1);
  cy = std::clamp<std::ptrdiff_t>(cy, 0, ny_ - 1);
}

std::size_t GridIndex::cell_of(Vec2 p) const noexcept {
  std::ptrdiff_t cx = 0;
  std::ptrdiff_t cy = 0;
  cell_coords(p, cx, cy);
  return static_cast<std::size_t>(cy * nx_ + cx);
}

std::size_t GridIndex::nearest(Vec2 query) const noexcept {
  if (points_.empty()) return npos;
  std::ptrdiff_t qx = 0;
  std::ptrdiff_t qy = 0;
  cell_coords(query, qx, qy);

  std::size_t best = npos;
  double best_d2 = std::numeric_limits<double>::infinity();
  const std::ptrdiff_t max_ring = std::max(nx_, ny_);

  for (std::ptrdiff_t ring = 0; ring <= max_ring; ++ring) {
    // Once we hold a candidate, we may stop after the first ring whose inner
    // boundary is farther than the candidate: every unexplored point is at
    // least (ring-1)*cell_size away.
    if (best != npos) {
      const double safe = static_cast<double>(ring - 1) * cell_size_;
      if (safe > 0.0 && safe * safe >= best_d2) break;
    }
    for (std::ptrdiff_t dy = -ring; dy <= ring; ++dy) {
      for (std::ptrdiff_t dx = -ring; dx <= ring; ++dx) {
        if (std::max(std::abs(dx), std::abs(dy)) != ring) continue;  // ring only
        const std::ptrdiff_t cx = qx + dx;
        const std::ptrdiff_t cy = qy + dy;
        if (cx < 0 || cx >= nx_ || cy < 0 || cy >= ny_) continue;
        for (const std::size_t i :
             cells_[static_cast<std::size_t>(cy * nx_ + cx)].items) {
          const double d2 = (points_[i] - query).norm2();
          if (d2 < best_d2) {
            best_d2 = d2;
            best = i;
          }
        }
      }
    }
  }
  return best;
}

std::vector<std::size_t> GridIndex::within(Vec2 query, double radius) const {
  std::vector<std::size_t> out;
  within(query, radius, out);
  return out;
}

void GridIndex::within(Vec2 query, double radius,
                       std::vector<std::size_t>& out) const {
  out.clear();
  if (points_.empty() || radius < 0.0) return;
  std::ptrdiff_t lo_x = 0;
  std::ptrdiff_t lo_y = 0;
  std::ptrdiff_t hi_x = 0;
  std::ptrdiff_t hi_y = 0;
  cell_coords({query.x - radius, query.y - radius}, lo_x, lo_y);
  cell_coords({query.x + radius, query.y + radius}, hi_x, hi_y);
  const double r2 = radius * radius;
  for (std::ptrdiff_t cy = lo_y; cy <= hi_y; ++cy) {
    for (std::ptrdiff_t cx = lo_x; cx <= hi_x; ++cx) {
      for (const std::size_t i :
           cells_[static_cast<std::size_t>(cy * nx_ + cx)].items) {
        if ((points_[i] - query).norm2() <= r2) out.push_back(i);
      }
    }
  }
}

}  // namespace ct::geo
