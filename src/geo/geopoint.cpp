#include "geo/geopoint.h"

#include <cmath>
#include <numbers>

namespace ct::geo {

double deg_to_rad(double deg) noexcept {
  return deg * std::numbers::pi / 180.0;
}

double rad_to_deg(double rad) noexcept {
  return rad * 180.0 / std::numbers::pi;
}

double haversine_m(GeoPoint a, GeoPoint b) noexcept {
  const double lat1 = deg_to_rad(a.lat_deg);
  const double lat2 = deg_to_rad(b.lat_deg);
  const double dlat = lat2 - lat1;
  const double dlon = deg_to_rad(b.lon_deg - a.lon_deg);
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusM * std::asin(std::min(1.0, std::sqrt(h)));
}

double initial_bearing_deg(GeoPoint a, GeoPoint b) noexcept {
  const double lat1 = deg_to_rad(a.lat_deg);
  const double lat2 = deg_to_rad(b.lat_deg);
  const double dlon = deg_to_rad(b.lon_deg - a.lon_deg);
  const double y = std::sin(dlon) * std::cos(lat2);
  const double x = std::cos(lat1) * std::sin(lat2) -
                   std::sin(lat1) * std::cos(lat2) * std::cos(dlon);
  const double bearing = rad_to_deg(std::atan2(y, x));
  return std::fmod(bearing + 360.0, 360.0);
}

GeoPoint destination(GeoPoint start, double bearing_deg,
                     double distance_m) noexcept {
  const double delta = distance_m / kEarthRadiusM;
  const double theta = deg_to_rad(bearing_deg);
  const double lat1 = deg_to_rad(start.lat_deg);
  const double lon1 = deg_to_rad(start.lon_deg);
  const double lat2 = std::asin(std::sin(lat1) * std::cos(delta) +
                                std::cos(lat1) * std::sin(delta) *
                                    std::cos(theta));
  const double lon2 =
      lon1 + std::atan2(std::sin(theta) * std::sin(delta) * std::cos(lat1),
                        std::cos(delta) - std::sin(lat1) * std::sin(lat2));
  return {rad_to_deg(lat2), rad_to_deg(lon2)};
}

EnuProjection::EnuProjection(GeoPoint reference) noexcept
    : ref_(reference), cos_ref_lat_(std::cos(deg_to_rad(reference.lat_deg))) {}

Vec2 EnuProjection::to_enu(GeoPoint p) const noexcept {
  const double x =
      deg_to_rad(p.lon_deg - ref_.lon_deg) * cos_ref_lat_ * kEarthRadiusM;
  const double y = deg_to_rad(p.lat_deg - ref_.lat_deg) * kEarthRadiusM;
  return {x, y};
}

GeoPoint EnuProjection::to_geo(Vec2 enu) const noexcept {
  const double lat = ref_.lat_deg + rad_to_deg(enu.y / kEarthRadiusM);
  const double lon =
      ref_.lon_deg + rad_to_deg(enu.x / (kEarthRadiusM * cos_ref_lat_));
  return {lat, lon};
}

}  // namespace ct::geo
