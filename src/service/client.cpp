#include "service/client.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "service/server.h"  // parse_address

namespace ct::service {

namespace {

using util::Error;
using util::ErrorCode;

[[noreturn]] void io_fail(const std::string& what) {
  throw Error(ErrorCode::kIo, "client",
              what + ": " + std::strerror(errno));
}

int dial_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw Error(ErrorCode::kInvalidInput, "client",
                "unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) io_fail("socket(AF_UNIX)");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    io_fail("connect(" + path + ")");
  }
  return fd;
}

int dial_tcp(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &result);
  if (rc != 0) {
    throw Error(ErrorCode::kIo, "client",
                "cannot resolve " + host + ": " + ::gai_strerror(rc));
  }
  int fd = -1;
  int saved_errno = 0;
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      saved_errno = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    saved_errno = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(result);
  if (fd < 0) {
    errno = saved_errno;
    io_fail("connect(" + host + ":" + std::to_string(port) + ")");
  }
  return fd;
}

}  // namespace

Client::Client(const std::string& address, std::string client_name)
    : address_(address), client_name_(std::move(client_name)) {
  parse_address(address_);  // fail fast on garbage
}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::connect() {
  const Address addr = parse_address(address_);
  fd_ = addr.is_unix ? dial_unix(addr.path) : dial_tcp(addr.host, addr.port);

  Hello hello;
  hello.client_name = client_name_;
  send_bytes(encode_frame(FrameType::kHello, 0, encode_hello(hello)));
  const Frame frame = read_frame();
  if (frame.type == FrameType::kError) {
    const ErrorInfo info = decode_error(frame.payload);
    close();
    throw Error(ErrorCode::kProtocol, "client",
                "handshake refused (" + std::string(status_name(info.status)) +
                    "): " + info.message);
  }
  if (frame.type != FrameType::kWelcome) {
    close();
    throw Error(ErrorCode::kProtocol, "client",
                "expected kWelcome, got a different frame");
  }
  welcome_ = decode_welcome(frame.payload);
}

CallResult Client::call(
    const Request& request,
    const std::function<void(const StreamChunk&)>& on_chunk) {
  if (fd_ < 0) {
    throw Error(ErrorCode::kIo, "client", "not connected");
  }
  const std::uint32_t id = next_request_id_++;
  send_bytes(encode_frame(FrameType::kRequest, id, encode_request(request)));
  for (;;) {
    const Frame frame = read_frame();
    if (frame.request_id != id) continue;  // stale frame from a prior call
    switch (frame.type) {
      case FrameType::kStreamChunk: {
        const StreamChunk chunk = decode_chunk(frame.payload);
        if (on_chunk) on_chunk(chunk);
        break;
      }
      case FrameType::kResponse: {
        CallResult out;
        out.ok = true;
        out.response = decode_response(frame.payload);
        return out;
      }
      case FrameType::kError: {
        CallResult out;
        out.ok = false;
        out.error = decode_error(frame.payload);
        return out;
      }
      default:
        throw Error(ErrorCode::kProtocol, "client",
                    "unexpected frame type in response stream");
    }
  }
}

Frame Client::read_frame() {
  Frame frame;
  char buffer[64 * 1024];
  while (!decoder_.next(frame)) {
    const ssize_t n = ::recv(fd_, buffer, sizeof buffer, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      close();
      throw Error(ErrorCode::kIo, "client",
                  "connection closed by server mid-conversation");
    }
    decoder_.feed(buffer, static_cast<std::size_t>(n));
  }
  return frame;
}

void Client::send_bytes(const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      close();
      io_fail("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace ct::service
