#include "service/protocol.h"

#include <cstring>

#include "util/digest.h"

namespace ct::service {

namespace {

using util::Error;
using util::ErrorCode;

[[noreturn]] void fail(std::string_view message) {
  throw Error(ErrorCode::kProtocol, "wire", message);
}

void put_le(std::string& out, std::uint64_t v, std::size_t bytes) {
  for (std::size_t i = 0; i < bytes; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint64_t get_le(const std::uint8_t* p, std::size_t bytes) noexcept {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bytes; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

std::string_view status_name(Status status) noexcept {
  switch (status) {
    case Status::kMalformedRequest: return "malformed-request";
    case Status::kUnsupportedVersion: return "unsupported-version";
    case Status::kOverloaded: return "overloaded";
    case Status::kDeadlineExceeded: return "deadline-exceeded";
    case Status::kShuttingDown: return "shutting-down";
    case Status::kExecutionFailed: return "execution-failed";
  }
  return "unknown";
}

std::uint64_t frame_digest(std::string_view bytes) noexcept {
  util::Digest d;
  d.str(bytes);
  return d.value()[0];
}

// --- WireWriter ------------------------------------------------------------

WireWriter& WireWriter::u8(std::uint8_t v) {
  put_le(out_, v, 1);
  return *this;
}
WireWriter& WireWriter::u16(std::uint16_t v) {
  put_le(out_, v, 2);
  return *this;
}
WireWriter& WireWriter::u32(std::uint32_t v) {
  put_le(out_, v, 4);
  return *this;
}
WireWriter& WireWriter::u64(std::uint64_t v) {
  put_le(out_, v, 8);
  return *this;
}
WireWriter& WireWriter::i32(std::int32_t v) {
  put_le(out_, static_cast<std::uint32_t>(v), 4);
  return *this;
}
WireWriter& WireWriter::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  return u64(bits);
}
WireWriter& WireWriter::boolean(bool v) { return u8(v ? 1 : 0); }
WireWriter& WireWriter::str(std::string_view s) {
  if (s.size() > kMaxPayload) fail("string exceeds frame bound");
  u32(static_cast<std::uint32_t>(s.size()));
  out_.append(s.data(), s.size());
  return *this;
}

// --- WireReader ------------------------------------------------------------

const std::uint8_t* WireReader::take(std::size_t n) {
  if (n > remaining()) fail("payload truncated");
  const auto* p = reinterpret_cast<const std::uint8_t*>(data_.data()) + pos_;
  pos_ += n;
  return p;
}

std::uint8_t WireReader::u8() { return static_cast<std::uint8_t>(*take(1)); }
std::uint16_t WireReader::u16() {
  return static_cast<std::uint16_t>(get_le(take(2), 2));
}
std::uint32_t WireReader::u32() {
  return static_cast<std::uint32_t>(get_le(take(4), 4));
}
std::uint64_t WireReader::u64() { return get_le(take(8), 8); }
std::int32_t WireReader::i32() { return static_cast<std::int32_t>(u32()); }
double WireReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}
bool WireReader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) fail("boolean field out of range");
  return v == 1;
}
std::string WireReader::str() {
  const std::uint32_t n = u32();
  if (n > remaining()) fail("string length exceeds payload");
  const auto* p = take(n);
  return std::string(reinterpret_cast<const char*>(p), n);
}
void WireReader::require_end() const {
  if (pos_ != data_.size()) fail("trailing bytes after payload fields");
}

// --- frame encode ----------------------------------------------------------

std::string encode_frame(FrameType type, std::uint32_t request_id,
                         std::string_view payload) {
  if (payload.size() > kMaxPayload) fail("payload exceeds frame bound");
  std::string out;
  out.reserve(kHeaderSize + payload.size());
  put_le(out, kMagic, 4);
  put_le(out, kProtocolVersion, 1);
  put_le(out, static_cast<std::uint8_t>(type), 1);
  put_le(out, 0, 2);  // flags
  put_le(out, static_cast<std::uint32_t>(payload.size()), 4);
  put_le(out, request_id, 4);
  put_le(out, frame_digest(payload), 8);
  put_le(out, frame_digest(out), 8);  // header digest over bytes [0, 24)
  out.append(payload.data(), payload.size());
  return out;
}

// --- typed payloads --------------------------------------------------------

std::string encode_hello(const Hello& hello) {
  WireWriter w;
  w.str(hello.client_name).u8(hello.min_version).u8(hello.max_version);
  return w.take();
}

Hello decode_hello(std::string_view payload) {
  WireReader r(payload);
  Hello hello;
  hello.client_name = r.str();
  hello.min_version = r.u8();
  hello.max_version = r.u8();
  if (hello.min_version > hello.max_version) fail("hello version range empty");
  r.require_end();
  return hello;
}

std::string encode_welcome(const Welcome& welcome) {
  WireWriter w;
  w.u8(welcome.version).str(welcome.server_name);
  return w.take();
}

Welcome decode_welcome(std::string_view payload) {
  WireReader r(payload);
  Welcome welcome;
  welcome.version = r.u8();
  welcome.server_name = r.str();
  r.require_end();
  return welcome;
}

std::string encode_request(const Request& request) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(request.kind));
  w.u64(request.realizations);
  w.f64(request.sea_level_offset_m);
  w.u32(request.max_retries);
  w.u32(request.deadline_ms);
  w.boolean(request.no_cache);
  w.boolean(request.strict);
  w.boolean(request.json);
  w.str(request.primary).str(request.backup).str(request.dc);
  w.str(request.topology_csv);
  return w.take();
}

Request decode_request(std::string_view payload) {
  WireReader r(payload);
  Request request;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(RequestKind::kMetrics)) {
    fail("unknown request kind");
  }
  request.kind = static_cast<RequestKind>(kind);
  request.realizations = r.u64();
  request.sea_level_offset_m = r.f64();
  if (!(request.sea_level_offset_m == request.sea_level_offset_m)) {
    fail("sea-level offset is NaN");
  }
  request.max_retries = r.u32();
  request.deadline_ms = r.u32();
  request.no_cache = r.boolean();
  request.strict = r.boolean();
  request.json = r.boolean();
  request.primary = r.str();
  request.backup = r.str();
  request.dc = r.str();
  request.topology_csv = r.str();
  r.require_end();
  return request;
}

std::string encode_response(const Response& response) {
  WireWriter w;
  w.i32(response.exit_code);
  w.boolean(response.degraded).boolean(response.all_from_cache);
  w.u64(response.attempted).u64(response.completed);
  w.u64(response.quarantined).u64(response.retries);
  w.str(response.output);
  return w.take();
}

Response decode_response(std::string_view payload) {
  WireReader r(payload);
  Response response;
  response.exit_code = r.i32();
  response.degraded = r.boolean();
  response.all_from_cache = r.boolean();
  response.attempted = r.u64();
  response.completed = r.u64();
  response.quarantined = r.u64();
  response.retries = r.u64();
  response.output = r.str();
  r.require_end();
  return response;
}

std::string encode_chunk(const StreamChunk& chunk) {
  WireWriter w;
  w.u64(chunk.done).u64(chunk.total).u64(chunk.quarantined).u64(chunk.retries);
  return w.take();
}

StreamChunk decode_chunk(std::string_view payload) {
  WireReader r(payload);
  StreamChunk chunk;
  chunk.done = r.u64();
  chunk.total = r.u64();
  chunk.quarantined = r.u64();
  chunk.retries = r.u64();
  r.require_end();
  return chunk;
}

std::string encode_error(const ErrorInfo& error) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(error.status));
  w.str(error.message);
  w.u32(error.queue_depth).u32(error.retry_after_ms);
  return w.take();
}

ErrorInfo decode_error(std::string_view payload) {
  WireReader r(payload);
  ErrorInfo error;
  const std::uint8_t status = r.u8();
  if (status < static_cast<std::uint8_t>(Status::kMalformedRequest) ||
      status > static_cast<std::uint8_t>(Status::kExecutionFailed)) {
    fail("unknown error status");
  }
  error.status = static_cast<Status>(status);
  error.message = r.str();
  error.queue_depth = r.u32();
  error.retry_after_ms = r.u32();
  r.require_end();
  return error;
}

// --- FrameDecoder ----------------------------------------------------------

void FrameDecoder::feed(const void* data, std::size_t n) {
  buffer_.append(static_cast<const char*>(data), n);
}

bool FrameDecoder::next(Frame& out) {
  // Compact lazily so long sessions do not grow the buffer without bound.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > 64 * 1024) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  if (buffered() < kHeaderSize) return false;
  const auto* h =
      reinterpret_cast<const std::uint8_t*>(buffer_.data()) + consumed_;

  // Validate strictly in header order; no field is trusted before the
  // digest over the preceding 24 bytes checks out.
  if (get_le(h, 4) != kMagic) fail("bad magic");
  const auto version = static_cast<std::uint8_t>(get_le(h + 4, 1));
  if (version != kProtocolVersion) fail("unsupported protocol version");
  const auto type = static_cast<std::uint8_t>(get_le(h + 5, 1));
  if (type < static_cast<std::uint8_t>(FrameType::kHello) ||
      type > static_cast<std::uint8_t>(FrameType::kError)) {
    fail("unknown frame type");
  }
  if (get_le(h + 6, 2) != 0) fail("nonzero flags");
  const auto payload_size = static_cast<std::uint32_t>(get_le(h + 8, 4));
  const auto request_id = static_cast<std::uint32_t>(get_le(h + 12, 4));
  const std::uint64_t payload_digest = get_le(h + 16, 8);
  const std::uint64_t header_digest = get_le(h + 24, 8);
  const std::string_view header_bytes(
      reinterpret_cast<const char*>(h), kHeaderSize - 8);
  if (frame_digest(header_bytes) != header_digest) fail("header checksum");
  if (payload_size > kMaxPayload) fail("payload size exceeds bound");

  if (buffered() < kHeaderSize + payload_size) return false;
  const std::string_view payload(
      buffer_.data() + consumed_ + kHeaderSize, payload_size);
  if (frame_digest(payload) != payload_digest) fail("payload checksum");

  out.type = static_cast<FrameType>(type);
  out.request_id = request_id;
  out.payload.assign(payload.data(), payload.size());
  consumed_ += kHeaderSize + payload_size;
  return true;
}

}  // namespace ct::service
