// Blocking ct_service client: dials a server (TCP loopback or Unix-domain
// socket), performs the version handshake, and runs requests one at a
// time, surfacing kStreamChunk progress frames through a callback as the
// server's sweep crosses slice boundaries.
//
// Used by `ctctl --connect <addr>` (whose stdout must be byte-identical
// to local execution — the server guarantees that by construction, see
// exec.h) and by anything else that wants analysis-as-a-service without
// linking the whole pipeline.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "service/protocol.h"

namespace ct::service {

/// Outcome of one call: exactly one of `response` (ok == true) or
/// `error` (ok == false) is meaningful.
struct CallResult {
  bool ok = false;
  Response response;
  ErrorInfo error;
};

class Client {
 public:
  /// `address` is "unix:<path>", a bare path containing '/', or
  /// "[tcp:]<host>:<port>". The constructor only parses; connect() dials.
  explicit Client(const std::string& address,
                  std::string client_name = "ctctl");
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Dials and handshakes. Throws ct::Error{kIo} when the server is
  /// unreachable and ct::Error{kProtocol} when the handshake is refused
  /// or the stream is malformed.
  void connect();

  /// Sends one request and blocks until its final kResponse or kError
  /// frame, invoking `on_chunk` for every kStreamChunk in between.
  /// Requests are serialized per client (the protocol allows pipelining;
  /// this client does not use it). Throws ct::Error{kIo/kProtocol} when
  /// the connection itself fails mid-call.
  CallResult call(const Request& request,
                  const std::function<void(const StreamChunk&)>& on_chunk = {});

  bool connected() const noexcept { return fd_ >= 0; }
  /// The server's handshake answer (valid after connect()).
  const Welcome& welcome() const noexcept { return welcome_; }

  void close();

 private:
  /// Blocks until the next complete frame arrives.
  Frame read_frame();
  void send_bytes(const std::string& bytes);

  std::string address_;
  std::string client_name_;
  int fd_ = -1;
  std::uint32_t next_request_id_ = 1;
  FrameDecoder decoder_;
  Welcome welcome_;
};

}  // namespace ct::service
