#include "service/exec.h"

#include <sstream>
#include <utility>
#include <vector>

#include "core/report.h"
#include "core/restoration.h"
#include "core/siting.h"
#include "scada/oahu.h"
#include "scada/topology_io.h"
#include "terrain/oahu.h"
#include "threat/scenario.h"
#include "util/digest.h"
#include "util/strings.h"
#include "util/table.h"

namespace ct::service {

namespace {

using util::Error;
using util::ErrorCode;

/// Resolves an asset-id flag against the topology (empty picks the Oahu
/// default), with the same failure text the CLI always printed.
std::string pick_asset(const scada::ScadaTopology& topology,
                       const std::string& requested, const char* fallback) {
  const std::string id = requested.empty() ? fallback : requested;
  if (!topology.contains(id)) {
    throw Error(ErrorCode::kInvalidInput, "service",
                "no asset with id '" + id + "' in the topology");
  }
  return id;
}

std::vector<scada::Configuration> request_configs(
    const Request& request, const scada::ScadaTopology& topology) {
  return scada::paper_configurations(
      pick_asset(topology, request.primary, scada::oahu_ids::kHonoluluCc),
      pick_asset(topology, request.backup, scada::oahu_ids::kWaiauCc),
      pick_asset(topology, request.dc, scada::oahu_ids::kDrFortress));
}

/// The realization-affecting and runtime-behavior-affecting knobs a
/// request derives from the defaults (shared between make_case_study and
/// session_key so the LRU key can never drift from the construction).
core::CaseStudyOptions request_options(const Request& request,
                                       const core::CaseStudyOptions& defaults) {
  core::CaseStudyOptions options = defaults;
  options.realizations = static_cast<std::size_t>(request.realizations);
  options.realization.sea_level_offset_m = request.sea_level_offset_m;
  if (request.max_retries != kUseServerDefault) {
    options.runtime.max_retries = request.max_retries;
  }
  if (request.no_cache) {
    options.runtime.cache = false;
    options.runtime.disk_cache = false;
  }
  return options;
}

/// A borrowed runtime must behave exactly like a request-private one
/// would; only knobs the request can change need comparing (the rest are
/// the defaults the shared runner was built from).
bool runtime_compatible(const runtime::EnsembleOptions& derived,
                        const runtime::EnsembleOptions& shared) {
  return derived.cache == shared.cache &&
         derived.disk_cache == shared.disk_cache &&
         derived.max_retries == shared.max_retries;
}

/// Quarantine summary + exit code, shared verbatim by every subcommand
/// (this is ctctl's old finish_analysis with the stream made explicit).
int finish_analysis(std::ostream& os,
                    const std::vector<core::ScenarioResult>& all_results,
                    bool strict) {
  bool degraded = false;
  std::uint64_t retries = 0;
  for (const core::ScenarioResult& r : all_results) {
    degraded = degraded || r.degraded();
    retries += r.retries;
  }
  if (degraded) {
    os << "=== degraded run: quarantined realizations ===\n";
    core::failure_summary_table(all_results).render(os);
    os << "(" << retries << " retry attempt(s) spent; partial "
       << "distributions above cover completed realizations only)\n\n";
  }
  return core::analysis_exit_code(all_results, strict);
}

void accumulate(ExecOutcome& out,
                const std::vector<core::ScenarioResult>& results) {
  for (const core::ScenarioResult& r : results) {
    out.degraded = out.degraded || r.degraded();
    out.attempted += r.attempted;
    out.completed += r.completed;
    out.quarantined += r.failures.size();
    out.retries += r.retries;
  }
}

ExecOutcome run_analyze(const Request& request, core::CaseStudyRunner& runner,
                        const runtime::CheckpointOptions& ckpt,
                        runtime::CancellationToken* interrupt) {
  ExecOutcome out;
  const std::vector<scada::Configuration> configs =
      request_configs(request, runner.topology());
  const auto all = threat::all_scenarios();
  const std::vector<threat::ThreatScenario> scenarios(all.begin(), all.end());

  const core::ResumableAnalysis analysis =
      runner.run_all_resumable(configs, scenarios, ckpt, interrupt);

  std::ostringstream os;
  if (!ckpt.dir.empty()) {
    os << "checkpoint: " << runtime::resume_status_name(analysis.resume.status)
       << ", restored " << analysis.restored << " and computed "
       << analysis.executed << " realization(s), " << analysis.checkpoints
       << " checkpoint write(s)\n\n";
  }

  std::vector<core::ScenarioResult> all_results;
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    // run_all_resumable returns row-major cells: configs within scenario.
    const auto begin = analysis.results.begin() +
                       static_cast<std::ptrdiff_t>(s * configs.size());
    std::vector<core::ScenarioResult> results(
        begin, begin + static_cast<std::ptrdiff_t>(configs.size()));
    os << "=== " << threat::scenario_name(scenarios[s]) << " ===";
    if (analysis.interrupted) os << " (partial)";
    os << "\n";
    core::profile_table(results).render(os);
    os << "\n";
    for (core::ScenarioResult& r : results) {
      all_results.push_back(std::move(r));
    }
  }

  out.interrupted = analysis.interrupted;
  out.all_from_cache = !analysis.results.empty() &&
                       analysis.cached_cells == analysis.results.size();
  accumulate(out, all_results);
  const int code = finish_analysis(os, all_results, request.strict);
  out.exit_code = analysis.interrupted
                      ? core::sweep_exit_code(analysis, request.strict)
                      : code;
  out.output = os.str();
  return out;
}

/// Synthesizes the "(generation)" accounting row commands that consume
/// the raw batch (downtime, siting) surface quarantines through.
core::ScenarioResult generation_result(core::CaseStudyRunner& runner) {
  core::ScenarioResult generation;
  generation.config_name = "(generation)";
  generation.failures = runner.generation_failures().failures;
  generation.retries = runner.generation_failures().retries;
  generation.attempted = runner.options().realizations;
  generation.completed = generation.attempted - generation.failures.size();
  return generation;
}

ExecOutcome run_downtime(const Request& request, core::CaseStudyRunner& runner,
                         runtime::CancellationToken* interrupt) {
  ExecOutcome out;
  const std::vector<scada::Configuration> configs =
      request_configs(request, runner.topology());
  const core::RestorationModel model;
  std::ostringstream os;
  for (const threat::ThreatScenario scenario : threat::all_scenarios()) {
    if (interrupt != nullptr && interrupt->cancelled()) {
      out.interrupted = true;
      break;
    }
    util::TextTable table;
    table.set_columns({"config", "E[downtime] h", "E[incorrect] h"},
                      {util::Align::kLeft, util::Align::kRight,
                       util::Align::kRight});
    for (const auto& config : configs) {
      const core::RestorationResult r = core::analyze_restoration(
          config, scenario, runner.realizations(), model, runner.runtime(), 0);
      table.add_row({config.name,
                     util::format_fixed(r.expected_downtime_hours, 2),
                     util::format_fixed(r.expected_incorrect_hours, 2)});
    }
    os << "=== " << threat::scenario_name(scenario) << " ===\n";
    table.render(os);
    os << "\n";
  }
  // Restoration consumes the raw batch, so quarantine accounting lives in
  // the generation ledger rather than per-scenario results.
  const std::vector<core::ScenarioResult> results = {generation_result(runner)};
  accumulate(out, results);
  const int code = finish_analysis(os, results, request.strict);
  out.exit_code = out.interrupted ? 5 : code;
  out.output = os.str();
  return out;
}

/// Backup-site candidates of a siting request: the paper's curated list
/// for the built-in topology, every siteable asset (control centers,
/// data centers, power plants, in topology order) for an uploaded one.
std::vector<std::string> siting_candidates(
    const Request& request, const scada::ScadaTopology& topology) {
  if (request.topology_csv.empty()) {
    return scada::oahu_control_site_candidates();
  }
  std::vector<std::string> candidates;
  for (const scada::Asset& asset : topology.assets()) {
    if (asset.type == scada::AssetType::kControlCenter ||
        asset.type == scada::AssetType::kDataCenter ||
        asset.type == scada::AssetType::kPowerPlant) {
      candidates.push_back(asset.id);
    }
  }
  return candidates;
}

ExecOutcome run_siting(const Request& request, core::CaseStudyRunner& runner,
                       runtime::CancellationToken* interrupt) {
  ExecOutcome out;
  const std::string primary = pick_asset(runner.topology(), request.primary,
                                         scada::oahu_ids::kHonoluluCc);
  const std::vector<std::string> candidates =
      siting_candidates(request, runner.topology());
  core::SitingOptimizer optimizer(runner);

  std::ostringstream os;
  os << "backup-site ranking for \"6-6\" (primary " << primary << ", "
     << runner.options().realizations << " realizations)\n\n";
  for (const threat::ThreatScenario scenario : threat::all_scenarios()) {
    if (interrupt != nullptr && interrupt->cancelled()) {
      out.interrupted = true;
      break;
    }
    util::TextTable table;
    table.set_columns({"rank", "backup site", "green", "E[badness]"},
                      {util::Align::kRight, util::Align::kLeft,
                       util::Align::kRight, util::Align::kRight});
    std::size_t rank = 1;
    for (const core::SitingScore& score :
         optimizer.rank_backup_sites(primary, candidates, scenario)) {
      table.add_row({std::to_string(rank++), score.chosen[0],
                     util::format_percent(score.green_probability, 1),
                     util::format_fixed(score.expected_badness, 3)});
    }
    os << "=== " << threat::scenario_name(scenario) << " ===\n";
    table.render(os);
    os << "\n";
  }
  const std::vector<core::ScenarioResult> results = {generation_result(runner)};
  accumulate(out, results);
  const int code = finish_analysis(os, results, request.strict);
  out.exit_code = out.interrupted ? 5 : code;
  out.output = os.str();
  return out;
}

/// The stats line print_cache_stats always produced, computed over the
/// delta of this execution so shared-runner server sessions report their
/// own traffic rather than the process lifetime's.
std::string cache_stats_line(const runtime::ResultStore::Stats& before,
                             const runtime::ResultStore::Stats& after) {
  const std::uint64_t lookups = after.lookups - before.lookups;
  const std::uint64_t hits = after.hits - before.hits;
  const double rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(hits) / static_cast<double>(lookups);
  std::ostringstream os;
  os << "result cache: " << hits << "/" << lookups << " hits ("
     << util::format_fixed(rate * 100.0, 1) << "%), "
     << (after.disk_hits - before.disk_hits) << " from disk";
  if (after.corrupt_discarded > before.corrupt_discarded) {
    os << ", " << (after.corrupt_discarded - before.corrupt_discarded)
       << " corrupt record(s) discarded";
  }
  if (after.write_failures > before.write_failures) {
    os << ", " << (after.write_failures - before.write_failures)
       << " disk write failure(s) (memory-only fallback)";
  }
  return os.str();
}

}  // namespace

std::string session_key(const Request& request,
                        const core::CaseStudyOptions& defaults) {
  const core::CaseStudyOptions options = request_options(request, defaults);
  util::Digest d;
  d.str("ct-service-session");
  d.str(request.topology_csv);
  d.u64(options.realizations);
  d.f64(options.realization.sea_level_offset_m);
  d.u64(options.runtime.max_retries);
  d.boolean(options.runtime.cache);
  d.boolean(options.runtime.disk_cache);
  return d.hex();
}

std::unique_ptr<core::CaseStudyRunner> make_case_study(
    const Request& request, const core::CaseStudyOptions& defaults,
    runtime::EnsembleRunner* shared_runtime) {
  const core::CaseStudyOptions options = request_options(request, defaults);
  scada::ScadaTopology topology;
  if (request.topology_csv.empty()) {
    topology = scada::oahu_topology();
  } else {
    std::istringstream in(request.topology_csv);
    topology = scada::load_topology_csv(in, "request-topology.csv");
  }
  runtime::EnsembleRunner* borrowed =
      (shared_runtime != nullptr &&
       runtime_compatible(options.runtime, shared_runtime->options()))
          ? shared_runtime
          : nullptr;
  return std::make_unique<core::CaseStudyRunner>(
      std::move(topology), terrain::make_oahu_terrain(), options, borrowed);
}

ExecOutcome execute_request(const Request& request,
                            core::CaseStudyRunner& runner,
                            const runtime::CheckpointOptions& ckpt,
                            runtime::CancellationToken* interrupt) {
  const runtime::ResultStore::Stats before = runner.runtime().cache_stats();
  ExecOutcome out;
  switch (request.kind) {
    case RequestKind::kPing:
      break;  // liveness only: empty report, exit 0
    case RequestKind::kAnalyze:
      out = run_analyze(request, runner, ckpt, interrupt);
      break;
    case RequestKind::kDowntime:
      out = run_downtime(request, runner, interrupt);
      break;
    case RequestKind::kSiting:
      out = run_siting(request, runner, interrupt);
      break;
    case RequestKind::kStats:
    case RequestKind::kMetrics:
      throw Error(ErrorCode::kInvalidInput, "service",
                  "stats/metrics requests are answered by the server, "
                  "not executed");
  }
  out.cache_line = cache_stats_line(before, runner.runtime().cache_stats());
  return out;
}

}  // namespace ct::service
