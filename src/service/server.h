// ct_service server: an embedded analysis server layered over the
// ct_runtime execution engine.
//
// One Server multiplexes many client connections onto ONE work-stealing
// pool and ONE content-addressed result cache (the shared
// runtime::EnsembleRunner), which is the whole point of serving mode: the
// second client asking the paper's question gets a cache-warm answer
// without re-sweeping a single realization.
//
// Concurrency shape:
//   - one accept thread per listener (TCP loopback and/or Unix-domain);
//   - one session thread per connection, which owns the read side: it
//     drains the FrameDecoder, answers kPing/kStats inline, and ADMITS
//     analysis requests into a bounded queue;
//   - one executor thread, which drains the queue in admission order and
//     runs requests through service::execute_request against an LRU of
//     per-session CaseStudyRunners keyed by session_key().
//
// Admission control is explicit load shedding, not backpressure: when the
// queue is full the session answers kError/kOverloaded immediately —
// carrying the queue depth and a retry-after hint — instead of stalling
// the connection. A client that disappears mid-request has its in-flight
// sweep cancelled (cooperatively, at the next slice boundary) and its
// queued work skipped, so a dead client can never leak a queue slot.
// stop() drains gracefully: listeners close, new work is refused with
// kShuttingDown, admitted work completes, then sessions are torn down.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/case_study.h"
#include "runtime/ensemble_runner.h"
#include "service/exec.h"
#include "service/protocol.h"
#include "sim/scada_des.h"

namespace ct::service {

/// A parsed listen/connect address: "unix:<path>" (or any string
/// containing '/'), or "tcp:<host>:<port>" / "<host>:<port>".
struct Address {
  bool is_unix = false;
  std::string path;         ///< unix socket path
  std::string host;         ///< tcp host
  std::uint16_t port = 0;   ///< tcp port (0 = ephemeral when listening)
};

/// Parses an address string; throws ct::Error{kInvalidInput} on garbage.
Address parse_address(const std::string& spec);

struct ServerOptions {
  /// Unix-domain socket path; empty disables the Unix listener.
  std::string unix_path;
  /// Enable the TCP loopback listener.
  bool tcp = false;
  /// TCP port; 0 binds an ephemeral port (read back with tcp_port()).
  std::uint16_t tcp_port = 0;
  /// Admitted-but-unserved requests the queue holds before shedding.
  std::size_t queue_capacity = 8;
  /// Deadline applied to requests that do not carry one; 0 = none.
  std::uint32_t default_deadline_ms = 0;
  /// Backoff hint carried by kOverloaded error frames.
  std::uint32_t retry_after_ms = 250;
  /// Realizations per kStreamChunk progress frame (and the granularity at
  /// which deadlines/cancellation are honored).
  std::uint64_t stream_interval = 128;
  /// CaseStudyRunner sessions kept warm (LRU by session_key).
  std::size_t session_cap = 4;
  std::string name = "ctserved";
  /// Server-side execution knobs (jobs, cache placement, fault spec) and
  /// the defaults requests overlay (see exec.h).
  core::CaseStudyOptions defaults;
};

/// Counters behind the kStats request (and the test hooks).
struct ServerStats {
  std::uint64_t connections = 0;        ///< accepted over the lifetime
  std::uint64_t active_sessions = 0;    ///< currently connected
  std::uint64_t queue_depth = 0;        ///< admitted, not yet served
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;          ///< answered with kResponse
  std::uint64_t shed = 0;               ///< answered with kOverloaded
  std::uint64_t failed = 0;             ///< answered with another kError
  std::uint64_t abandoned = 0;          ///< client gone before the answer
  std::uint64_t protocol_errors = 0;    ///< connections dropped on bad frames
  std::uint64_t total_latency_ms = 0;   ///< summed admission->answer, completed
  std::uint64_t max_latency_ms = 0;
  std::uint64_t quarantined = 0;        ///< summed over completed requests
  std::uint64_t chunks_streamed = 0;
  runtime::ResultStore::Stats cache;    ///< shared runtime's result cache
  sim::DesCounters des;                 ///< process-wide DES throughput
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the configured listeners and spawns the accept/executor
  /// threads. Throws ct::Error{kIo} when a bind fails (the unix path is
  /// unlinked first) and ct::Error{kInvalidInput} when no listener is
  /// configured.
  void start();

  /// Graceful drain: stop accepting, refuse new admissions with
  /// kShuttingDown, finish admitted work, tear down sessions, join every
  /// thread. Idempotent; also run by the destructor.
  void stop();

  /// The TCP port actually bound (after start(); 0 when TCP is off).
  std::uint16_t tcp_port() const noexcept { return bound_tcp_port_; }

  ServerStats stats() const;

  /// The shared execution runtime every compatible session borrows.
  runtime::EnsembleRunner& runtime() noexcept { return shared_runtime_; }

 private:
  struct Session;
  struct Job {
    std::shared_ptr<Session> session;
    Request request;
    std::uint32_t request_id = 0;
    std::chrono::steady_clock::time_point admitted_at;
  };

  void accept_loop(int listen_fd);
  void session_loop(std::shared_ptr<Session> session);
  void executor_loop();

  /// Handles one decoded frame on a session thread. Returns false when the
  /// connection must close (protocol violation, handshake refusal).
  bool handle_frame(const std::shared_ptr<Session>& session,
                    const Frame& frame);
  void admit(const std::shared_ptr<Session>& session, Request request,
             std::uint32_t request_id);
  void run_job(Job job);
  std::string render_stats(bool json) const;

  core::CaseStudyRunner& session_runner(const Request& request);

  ServerOptions options_;
  runtime::EnsembleRunner shared_runtime_;

  std::vector<int> listen_fds_;
  std::uint16_t bound_tcp_port_ = 0;
  std::vector<std::thread> accept_threads_;
  std::vector<std::thread> session_threads_;
  std::thread executor_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};

  mutable std::mutex mutex_;  ///< guards queue_, sessions_, stats_
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  std::list<std::shared_ptr<Session>> sessions_;
  ServerStats stats_;

  /// Executor-thread-only LRU of warm case-study sessions (front = most
  /// recently used).
  std::list<std::pair<std::string, std::unique_ptr<core::CaseStudyRunner>>>
      runners_;
};

}  // namespace ct::service
