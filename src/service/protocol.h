// ct_service wire protocol: the versioned, length-prefixed binary framing
// the analysis server and its clients speak over a TCP or Unix-domain
// byte stream.
//
// Every frame is a fixed 32-byte header followed by `payload_size` bytes:
//
//   offset  size  field
//   0       4     magic "CTSV" (0x56535443 little-endian)
//   4       1     protocol version (kProtocolVersion)
//   5       1     frame type (FrameType)
//   6       2     flags (must be zero in version 1)
//   8       4     payload size (bounded by kMaxPayload)
//   12      4     request id (echoed on every response/chunk/error)
//   16      8     payload digest (util::Digest over the payload bytes)
//   24      8     header digest (util::Digest over bytes [0, 24))
//
// Both digests reuse the runtime's framed 128-bit hasher (low lane), so a
// flipped header bit, a truncated stream, or a foreign protocol banging on
// the port is detected before any payload field is interpreted. Decoding
// NEVER trusts a length before the header digest verifies, and every
// payload read is bounds-checked — a malformed frame surfaces as a typed
// ct::Error{kProtocol}, not UB (the fuzz test feeds seeded-random bytes
// straight into the decoder under ASan/UBSan to hold that line).
//
// Conversation shape: client sends kHello, server answers kWelcome (the
// version handshake), then any number of kRequest frames each answered by
// zero or more kStreamChunk frames (slice-boundary progress of a running
// sweep) followed by exactly one kResponse or kError. Frame payloads are
// encoded with WireWriter/WireReader (little-endian fixed-width fields,
// length-prefixed strings).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.h"

namespace ct::service {

inline constexpr std::uint32_t kMagic = 0x56535443u;  // "CTSV" little-endian
inline constexpr std::uint8_t kProtocolVersion = 1;
/// Upper bound on a frame payload; anything larger is a malformed frame
/// (an analysis report is a few KiB — 16 MiB leaves room for topology
/// uploads without letting a corrupt length field allocate the moon).
inline constexpr std::uint32_t kMaxPayload = 16u * 1024u * 1024u;
inline constexpr std::size_t kHeaderSize = 32;

enum class FrameType : std::uint8_t {
  kHello = 1,        ///< client -> server: version handshake
  kWelcome = 2,      ///< server -> client: handshake accepted
  kRequest = 3,      ///< client -> server: one analysis/stats request
  kResponse = 4,     ///< server -> client: final result of a request
  kStreamChunk = 5,  ///< server -> client: sweep progress at a slice boundary
  kError = 6,        ///< server -> client: request failed / was shed
};

/// Why the server answered kError instead of kResponse.
enum class Status : std::uint8_t {
  kMalformedRequest = 1,   ///< request payload failed to decode/validate
  kUnsupportedVersion = 2, ///< handshake version mismatch
  kOverloaded = 3,         ///< admission queue full: load shed, retry later
  kDeadlineExceeded = 4,   ///< per-request deadline expired mid-sweep
  kShuttingDown = 5,       ///< server draining; no new work admitted
  kExecutionFailed = 6,    ///< the analysis itself threw
};

std::string_view status_name(Status status) noexcept;

/// What the client asks the server to run.
enum class RequestKind : std::uint8_t {
  kPing = 0,      ///< round-trip liveness probe (no analysis)
  kAnalyze = 1,   ///< ctctl analyze: (configs x scenarios) sweep matrix
  kDowntime = 2,  ///< ctctl downtime: restoration-cost tables
  kSiting = 3,    ///< ctctl siting: backup-site ranking per scenario
  kStats = 4,     ///< server/runtime counters (cache, queue, latency)
  kMetrics = 5,   ///< full metrics-registry snapshot (ct_obs)
};

/// Sentinel for "use the server's configured default".
inline constexpr std::uint32_t kUseServerDefault = 0xffffffffu;

/// One analysis request, mirroring the ctctl flag surface. Execution
/// knobs that do not change results (worker count, cache placement) stay
/// server-side on purpose; everything here either changes the analysis
/// output or its accounting.
struct Request {
  RequestKind kind = RequestKind::kPing;
  std::uint64_t realizations = 1000;
  double sea_level_offset_m = 0.0;
  /// Retry budget per failed realization; kUseServerDefault defers.
  std::uint32_t max_retries = kUseServerDefault;
  /// Cooperative deadline for the whole request; 0 = server default.
  std::uint32_t deadline_ms = 0;
  bool no_cache = false;
  /// --strict exit-code policy (changes the exit code, not the report).
  bool strict = false;
  /// Render stats as JSON instead of a text table (kStats only).
  bool json = false;
  /// Asset ids of the primary / backup control center and data center;
  /// empty picks the built-in Oahu defaults.
  std::string primary;
  std::string backup;
  std::string dc;
  /// Topology CSV content shipped with the request; empty = built-in Oahu
  /// (files are client-local, so the CSV travels by value).
  std::string topology_csv;

  bool operator==(const Request&) const = default;
};

/// Final answer to a request. `output` is EXACTLY the report ctctl would
/// print to stdout for the same command locally — remote-vs-local
/// byte-identity is a protocol-level contract, enforced by tests and the
/// CI smoke job.
struct Response {
  std::int32_t exit_code = 0;
  bool degraded = false;
  /// Every analysis cell was served from the result cache (the signal the
  /// cache-warm smoke assertion reads).
  bool all_from_cache = false;
  std::uint64_t attempted = 0;
  std::uint64_t completed = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t retries = 0;
  std::string output;

  bool operator==(const Response&) const = default;
};

/// Sweep progress at a checkpoint-slice boundary (see
/// runtime::SweepProgressEvent — this is its wire form).
struct StreamChunk {
  std::uint64_t done = 0;
  std::uint64_t total = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t retries = 0;

  bool operator==(const StreamChunk&) const = default;
};

/// Error frame payload. For kOverloaded the queue fields carry the
/// admission state so a client can back off intelligently.
struct ErrorInfo {
  Status status = Status::kExecutionFailed;
  std::string message;
  std::uint32_t queue_depth = 0;     ///< admitted-but-unserved requests
  std::uint32_t retry_after_ms = 0;  ///< server's backoff hint

  bool operator==(const ErrorInfo&) const = default;
};

/// Handshake payloads.
struct Hello {
  std::string client_name;
  std::uint8_t min_version = kProtocolVersion;
  std::uint8_t max_version = kProtocolVersion;

  bool operator==(const Hello&) const = default;
};
struct Welcome {
  std::uint8_t version = kProtocolVersion;
  std::string server_name;

  bool operator==(const Welcome&) const = default;
};

// --- payload encoding ------------------------------------------------------

/// Little-endian bounds-unchecked appender (writing cannot overrun — the
/// buffer grows); strings are u32-length-prefixed.
class WireWriter {
 public:
  WireWriter& u8(std::uint8_t v);
  WireWriter& u16(std::uint16_t v);
  WireWriter& u32(std::uint32_t v);
  WireWriter& u64(std::uint64_t v);
  WireWriter& i32(std::int32_t v);
  WireWriter& f64(double v);  ///< IEEE-754 bit pattern
  WireWriter& boolean(bool v);
  WireWriter& str(std::string_view s);

  const std::string& bytes() const noexcept { return out_; }
  std::string take() noexcept { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked little-endian reader over a payload. Every overrun,
/// oversize string, or trailing-garbage condition throws
/// ct::Error{kProtocol} — malformed input is a typed error, never UB.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32();
  double f64();
  bool boolean();
  std::string str();

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  /// Throws unless the payload was consumed exactly.
  void require_end() const;

 private:
  const std::uint8_t* take(std::size_t n);

  std::string_view data_;
  std::size_t pos_ = 0;
};

// --- frames ----------------------------------------------------------------

/// A decoded frame: type + request id + raw payload bytes.
struct Frame {
  FrameType type = FrameType::kHello;
  std::uint32_t request_id = 0;
  std::string payload;
};

/// Encodes a complete frame (header + payload) ready for the socket.
std::string encode_frame(FrameType type, std::uint32_t request_id,
                         std::string_view payload);

// Typed payload encoders / decoders. Decoders validate exhaustively
// (enum ranges, exact payload consumption) and throw ct::Error{kProtocol}.
std::string encode_hello(const Hello& hello);
Hello decode_hello(std::string_view payload);
std::string encode_welcome(const Welcome& welcome);
Welcome decode_welcome(std::string_view payload);
std::string encode_request(const Request& request);
Request decode_request(std::string_view payload);
std::string encode_response(const Response& response);
Response decode_response(std::string_view payload);
std::string encode_chunk(const StreamChunk& chunk);
StreamChunk decode_chunk(std::string_view payload);
std::string encode_error(const ErrorInfo& error);
ErrorInfo decode_error(std::string_view payload);

/// Incremental frame decoder for a byte stream: feed() whatever recv()
/// returned, then drain next() until it reports no complete frame.
/// Validation order is strict — magic, version, flags, header digest,
/// payload bound — so a corrupt length can never commit the decoder to a
/// bogus read. All errors are ct::Error{kProtocol}; after one the stream
/// is unsynchronized and the connection must be dropped (the caller
/// decides; the decoder itself stays inert).
class FrameDecoder {
 public:
  /// Appends raw bytes from the stream.
  void feed(const void* data, std::size_t n);

  /// Extracts the next complete frame into `out`. Returns false when more
  /// bytes are needed. Throws ct::Error{kProtocol} on malformed input.
  bool next(Frame& out);

  /// Bytes buffered but not yet consumed by next().
  std::size_t buffered() const noexcept { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;
};

/// Low 64 bits of the framed content digest of `bytes` (the checksum the
/// header carries for itself and for the payload).
std::uint64_t frame_digest(std::string_view bytes) noexcept;

}  // namespace ct::service
