// Request execution shared by local ctctl and the ct_service server.
//
// Byte-identity is the load-bearing contract of the serving stack: a
// `ctctl --connect` analyze must print EXACTLY what a local `ctctl
// analyze` of the same inputs prints. Instead of asserting that two
// implementations agree, there is only one — ctctl's subcommand bodies
// live here, render into a string, and both the CLI (which writes it to
// stdout) and the server (which ships it in a kResponse frame) consume
// the same bytes. Anything that is operational diagnostics rather than
// analysis output (the result-cache stats line) is returned separately
// and routed to stderr / server logs, so it never taints the comparison.
#pragma once

#include <memory>
#include <string>

#include "core/case_study.h"
#include "runtime/checkpoint.h"
#include "service/protocol.h"

namespace ct::service {

/// Result of executing one Request.
struct ExecOutcome {
  /// ctctl exit-code policy (0 ok, 3 strict-degraded, 4 no data, 5
  /// interrupted; 1/2 are assigned by the CLI layer).
  int exit_code = 0;
  bool interrupted = false;
  bool degraded = false;
  /// Every analysis cell was served whole from the result cache.
  bool all_from_cache = false;
  // Cell-summed quarantine accounting (a realization that quarantines in
  // several (config, scenario) cells counts once per cell, matching the
  // failure-summary table).
  std::uint64_t attempted = 0;
  std::uint64_t completed = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t retries = 0;
  /// The report, byte-for-byte what ctctl prints to stdout.
  std::string output;
  /// Result-cache stats line for THIS execution (delta over the runner's
  /// counters) — diagnostics, bound for stderr or the server log.
  std::string cache_line;
};

/// Content key of the case-study session a request needs: requests with
/// equal keys can share one CaseStudyRunner (same topology, ensemble and
/// runtime-behavior knobs), which is how the server keeps realization
/// batches and in-memory cache entries warm across requests.
std::string session_key(const Request& request,
                        const core::CaseStudyOptions& defaults);

/// Builds the case study a request describes. `defaults` supplies the
/// server-side execution knobs (jobs, cache placement, fault spec); the
/// request overlays everything result-affecting (realizations, SLR,
/// retries, cache bypass, topology CSV). When `shared_runtime` is
/// non-null and the derived runtime knobs are behavior-compatible with
/// it, the runner BORROWS it (one pool + one result cache across all
/// sessions); otherwise the runner owns a private runtime.
/// Throws ct::Error{kParse} for a malformed topology CSV.
std::unique_ptr<core::CaseStudyRunner> make_case_study(
    const Request& request, const core::CaseStudyOptions& defaults,
    runtime::EnsembleRunner* shared_runtime);

/// Executes an analyze / downtime / siting / ping request against the
/// runner and renders the report. `ckpt` threads the CLI's checkpoint
/// options through (the server always passes stream-interval-only
/// options with an empty dir); `interrupt` is the cooperative
/// cancellation handle (SIGINT locally, deadline/disconnect/drain on the
/// server), honored at sweep slice boundaries.
/// Throws ct::Error{kInvalidInput} for unknown asset ids or a kStats
/// request (stats are answered by the server, not by execution).
ExecOutcome execute_request(const Request& request,
                            core::CaseStudyRunner& runner,
                            const runtime::CheckpointOptions& ckpt = {},
                            runtime::CancellationToken* interrupt = nullptr);

}  // namespace ct::service
