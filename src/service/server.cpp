#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/json_writer.h"
#include "util/strings.h"
#include "util/table.h"

namespace ct::service {

namespace {

using util::Error;
using util::ErrorCode;

/// Serving-layer telemetry: executed-request latency plus the shed counter
/// the admission queue bumps on kOverloaded.
struct ServiceMetrics {
  obs::Counter requests{"service.requests"};
  obs::Counter shed{"service.shed"};
  obs::Histogram request_us{"service.request_us"};
};

ServiceMetrics& service_metrics() {
  static ServiceMetrics m;
  return m;
}

[[noreturn]] void io_fail(const std::string& what) {
  throw Error(ErrorCode::kIo, "server",
              what + ": " + std::strerror(errno));
}

int make_unix_listener(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw Error(ErrorCode::kInvalidInput, "server",
                "unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) io_fail("socket(AF_UNIX)");
  ::unlink(path.c_str());  // a stale socket file from a dead server
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    io_fail("bind(" + path + ")");
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    io_fail("listen(" + path + ")");
  }
  return fd;
}

int make_tcp_listener(std::uint16_t port, std::uint16_t& bound) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) io_fail("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    io_fail("bind(127.0.0.1:" + std::to_string(port) + ")");
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    io_fail("listen");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    bound = ntohs(addr.sin_port);
  }
  return fd;
}

std::uint64_t elapsed_ms(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

Address parse_address(const std::string& spec) {
  Address out;
  if (util::starts_with(spec, "unix:")) {
    out.is_unix = true;
    out.path = spec.substr(5);
  } else if (spec.find('/') != std::string::npos) {
    out.is_unix = true;
    out.path = spec;
  } else {
    std::string rest =
        util::starts_with(spec, "tcp:") ? spec.substr(4) : spec;
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos) {
      throw Error(ErrorCode::kInvalidInput, "server",
                  "address must be unix:<path> or <host>:<port>, got: " +
                      spec);
    }
    out.host = rest.substr(0, colon);
    if (out.host.empty()) out.host = "127.0.0.1";
    const std::string port_str = rest.substr(colon + 1);
    char* end = nullptr;
    const unsigned long port = std::strtoul(port_str.c_str(), &end, 10);
    if (port_str.empty() || *end != '\0' || port > 65535) {
      throw Error(ErrorCode::kInvalidInput, "server",
                  "bad port in address: " + spec);
    }
    out.port = static_cast<std::uint16_t>(port);
  }
  if (out.is_unix && out.path.empty()) {
    throw Error(ErrorCode::kInvalidInput, "server",
                "empty unix socket path in address: " + spec);
  }
  return out;
}

// --- Session ---------------------------------------------------------------

/// One connected client. The session thread owns the read side; writes
/// (session thread for inline answers, executor thread for chunks and
/// final responses) serialize on write_mutex.
struct Server::Session {
  int fd = -1;
  std::mutex write_mutex;
  std::atomic<bool> alive{true};
  bool greeted = false;  ///< session-thread-only

  /// In-flight request's cancellation token; the session thread cancels
  /// it when the client disappears so a dead client's sweep stops at the
  /// next slice boundary instead of running to completion.
  std::mutex token_mutex;
  runtime::CancellationToken* inflight = nullptr;

  bool send_frame(FrameType type, std::uint32_t request_id,
                  std::string_view payload) {
    if (!alive.load(std::memory_order_acquire)) return false;
    const std::string bytes = encode_frame(type, request_id, payload);
    std::lock_guard<std::mutex> lock(write_mutex);
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        alive.store(false, std::memory_order_release);
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  void set_inflight(runtime::CancellationToken* token) {
    std::lock_guard<std::mutex> lock(token_mutex);
    inflight = token;
    // The client may have died while this request sat in the queue.
    if (token != nullptr && !alive.load(std::memory_order_acquire)) {
      token->request_cancel();
    }
  }

  void cancel_inflight() {
    std::lock_guard<std::mutex> lock(token_mutex);
    if (inflight != nullptr) inflight->request_cancel();
  }

  void shutdown_socket() { ::shutdown(fd, SHUT_RDWR); }
};

// --- Server ----------------------------------------------------------------

Server::Server(ServerOptions options)
    : options_(std::move(options)), shared_runtime_(options_.defaults.runtime) {
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.stream_interval == 0) options_.stream_interval = 128;
  if (options_.session_cap == 0) options_.session_cap = 1;
}

Server::~Server() { stop(); }

void Server::start() {
  if (options_.unix_path.empty() && !options_.tcp) {
    throw Error(ErrorCode::kInvalidInput, "server",
                "no listener configured (need a unix path or tcp)");
  }
  // A client closing mid-write must surface as a send() error, not kill
  // the process.
  std::signal(SIGPIPE, SIG_IGN);
  if (!options_.unix_path.empty()) {
    listen_fds_.push_back(make_unix_listener(options_.unix_path));
  }
  if (options_.tcp) {
    listen_fds_.push_back(make_tcp_listener(options_.tcp_port,
                                            bound_tcp_port_));
  }
  started_.store(true, std::memory_order_release);
  for (const int fd : listen_fds_) {
    accept_threads_.emplace_back([this, fd] { accept_loop(fd); });
  }
  executor_thread_ = std::thread([this] { executor_loop(); });
}

void Server::stop() {
  if (!started_.exchange(false, std::memory_order_acq_rel)) return;
  // 1. Refuse new work (admissions answer kShuttingDown from here on).
  draining_.store(true, std::memory_order_release);
  queue_cv_.notify_all();
  // 2. Close listeners; accept loops unblock and exit. shutdown() first:
  //    on Linux, close() alone does NOT wake a thread blocked in accept().
  for (const int fd : listen_fds_) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  for (std::thread& t : accept_threads_) t.join();
  accept_threads_.clear();
  listen_fds_.clear();
  // 3. The executor drains everything already admitted, then exits —
  //    clients that asked before the drain began still get answers.
  if (executor_thread_.joinable()) executor_thread_.join();
  // 4. Tear down the sessions: shut the sockets so blocked reads return.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& session : sessions_) session->shutdown_socket();
  }
  for (std::thread& t : session_threads_) t.join();
  session_threads_.clear();
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServerStats out = stats_;
  out.queue_depth = queue_.size();
  out.cache = shared_runtime_.cache_stats();
  out.des = sim::des_counters_snapshot();
  return out;
}

void Server::accept_loop(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (drain) or unrecoverable
    }
    if (draining_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    auto session = std::make_shared<Session>();
    session->fd = fd;
    std::lock_guard<std::mutex> lock(mutex_);
    sessions_.push_back(session);
    ++stats_.connections;
    ++stats_.active_sessions;
    session_threads_.emplace_back(
        [this, session] { session_loop(session); });
  }
}

void Server::session_loop(std::shared_ptr<Session> session) {
  FrameDecoder decoder;
  char buffer[64 * 1024];
  bool protocol_error = false;
  for (;;) {
    const ssize_t n = ::recv(session->fd, buffer, sizeof buffer, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // peer closed or socket shut down
    }
    try {
      decoder.feed(buffer, static_cast<std::size_t>(n));
      Frame frame;
      bool keep = true;
      while (keep && decoder.next(frame)) {
        keep = handle_frame(session, frame);
      }
      if (!keep) break;
    } catch (const Error& e) {
      // Malformed framing: answer with a typed error, then drop the
      // connection — after a framing fault the stream is unsynchronized.
      ErrorInfo info;
      info.status = Status::kMalformedRequest;
      info.message = e.what();
      session->send_frame(FrameType::kError, 0, encode_error(info));
      protocol_error = true;
      break;
    }
  }
  // Reclaim: cancel any in-flight sweep for this client and make queued
  // jobs no-ops (run_job skips dead sessions), so the admission slot is
  // never leaked.
  session->alive.store(false, std::memory_order_release);
  session->cancel_inflight();
  ::close(session->fd);
  std::lock_guard<std::mutex> lock(mutex_);
  if (protocol_error) ++stats_.protocol_errors;
  --stats_.active_sessions;
  sessions_.remove(session);
}

bool Server::handle_frame(const std::shared_ptr<Session>& session,
                          const Frame& frame) {
  if (!session->greeted) {
    if (frame.type != FrameType::kHello) {
      ErrorInfo info;
      info.status = Status::kMalformedRequest;
      info.message = "expected kHello before any other frame";
      session->send_frame(FrameType::kError, frame.request_id,
                         encode_error(info));
      return false;
    }
    const Hello hello = decode_hello(frame.payload);
    if (hello.min_version > kProtocolVersion ||
        hello.max_version < kProtocolVersion) {
      ErrorInfo info;
      info.status = Status::kUnsupportedVersion;
      info.message = "server speaks protocol version " +
                     std::to_string(int{kProtocolVersion});
      session->send_frame(FrameType::kError, frame.request_id,
                         encode_error(info));
      return false;
    }
    Welcome welcome;
    welcome.version = kProtocolVersion;
    welcome.server_name = options_.name;
    session->greeted = true;
    return session->send_frame(FrameType::kWelcome, frame.request_id,
                               encode_welcome(welcome));
  }

  if (frame.type != FrameType::kRequest) {
    ErrorInfo info;
    info.status = Status::kMalformedRequest;
    info.message = "unexpected frame type from client";
    session->send_frame(FrameType::kError, frame.request_id,
                       encode_error(info));
    return false;
  }

  Request request;
  try {
    request = decode_request(frame.payload);
  } catch (const Error& e) {
    // The frame itself was well-formed (checksums passed), so the stream
    // is still synchronized — answer and keep the connection.
    ErrorInfo info;
    info.status = Status::kMalformedRequest;
    info.message = e.what();
    session->send_frame(FrameType::kError, frame.request_id,
                       encode_error(info));
    return true;
  }

  // Liveness and introspection are answered inline on the session thread;
  // they never compete with analysis work for queue slots.
  if (request.kind == RequestKind::kPing) {
    Response response;
    session->send_frame(FrameType::kResponse, frame.request_id,
                        encode_response(response));
    return true;
  }
  if (request.kind == RequestKind::kStats) {
    Response response;
    response.output = render_stats(request.json);
    session->send_frame(FrameType::kResponse, frame.request_id,
                        encode_response(response));
    return true;
  }
  if (request.kind == RequestKind::kMetrics) {
    // Same formatter `ctctl stats --metrics` uses locally, so remote and
    // local metrics output are byte-identical by construction.
    Response response;
    response.output =
        obs::format_metrics(obs::capture_metrics(), request.json);
    session->send_frame(FrameType::kResponse, frame.request_id,
                        encode_response(response));
    return true;
  }

  admit(session, std::move(request), frame.request_id);
  return true;
}

void Server::admit(const std::shared_ptr<Session>& session, Request request,
                   std::uint32_t request_id) {
  ErrorInfo info;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_.load(std::memory_order_acquire)) {
      ++stats_.failed;
      info.status = Status::kShuttingDown;
      info.message = "server is draining; no new work admitted";
    } else if (queue_.size() >= options_.queue_capacity) {
      // Explicit load shedding: a full queue answers immediately with the
      // admission state instead of stalling the connection.
      ++stats_.shed;
      service_metrics().shed.inc();
      obs::trace_instant("service.shed");
      info.status = Status::kOverloaded;
      info.message = "admission queue full";
      info.queue_depth = static_cast<std::uint32_t>(queue_.size());
      info.retry_after_ms = options_.retry_after_ms;
    } else {
      Job job;
      job.session = session;
      job.request = std::move(request);
      job.request_id = request_id;
      job.admitted_at = std::chrono::steady_clock::now();
      queue_.push_back(std::move(job));
      ++stats_.admitted;
      queue_cv_.notify_one();
      return;
    }
  }
  session->send_frame(FrameType::kError, request_id, encode_error(info));
}

void Server::executor_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [this] {
        return !queue_.empty() || draining_.load(std::memory_order_acquire);
      });
      if (queue_.empty()) return;  // draining and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    run_job(std::move(job));
  }
}

core::CaseStudyRunner& Server::session_runner(const Request& request) {
  const std::string key = session_key(request, options_.defaults);
  for (auto it = runners_.begin(); it != runners_.end(); ++it) {
    if (it->first == key) {
      runners_.splice(runners_.begin(), runners_, it);
      return *runners_.front().second;
    }
  }
  runners_.emplace_front(
      key, make_case_study(request, options_.defaults, &shared_runtime_));
  if (runners_.size() > options_.session_cap) runners_.pop_back();
  return *runners_.front().second;
}

void Server::run_job(Job job) {
  obs::Span span("service.request");
  ServiceMetrics& metrics = service_metrics();
  obs::ScopedTimer timer(metrics.request_us);
  metrics.requests.inc();
  const std::shared_ptr<Session>& session = job.session;
  if (!session->alive.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.abandoned;
    return;
  }

  const std::uint32_t deadline_ms = job.request.deadline_ms != 0
                                        ? job.request.deadline_ms
                                        : options_.default_deadline_ms;
  runtime::CancellationToken token =
      deadline_ms != 0
          ? runtime::CancellationToken(std::chrono::milliseconds(deadline_ms))
          : runtime::CancellationToken();
  session->set_inflight(&token);

  ErrorInfo failure;
  bool failed = false;
  ExecOutcome outcome;
  try {
    core::CaseStudyRunner& runner = session_runner(job.request);
    runtime::CheckpointOptions ckpt;
    ckpt.interval = options_.stream_interval;
    ckpt.on_progress = [&](const runtime::SweepProgressEvent& event) {
      StreamChunk chunk;
      chunk.done = event.done;
      chunk.total = event.total;
      chunk.quarantined = event.quarantined;
      chunk.retries = event.retries;
      if (session->send_frame(FrameType::kStreamChunk, job.request_id,
                              encode_chunk(chunk))) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.chunks_streamed;
      }
    };
    outcome = execute_request(job.request, runner, ckpt, &token);
    if (outcome.interrupted) {
      failed = true;
      failure.status = Status::kDeadlineExceeded;
      failure.message = "deadline of " + std::to_string(deadline_ms) +
                        " ms exceeded; partial progress discarded";
    }
  } catch (const Error& e) {
    failed = true;
    failure.status = (e.code() == ErrorCode::kInvalidInput ||
                      e.code() == ErrorCode::kParse)
                         ? Status::kMalformedRequest
                         : Status::kExecutionFailed;
    failure.message = e.what();
  } catch (const std::exception& e) {
    failed = true;
    failure.status = Status::kExecutionFailed;
    failure.message = e.what();
  }
  session->set_inflight(nullptr);

  if (!session->alive.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.abandoned;
    return;
  }
  if (failed) {
    session->send_frame(FrameType::kError, job.request_id,
                        encode_error(failure));
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.failed;
    return;
  }

  Response response;
  response.exit_code = outcome.exit_code;
  response.degraded = outcome.degraded;
  response.all_from_cache = outcome.all_from_cache;
  response.attempted = outcome.attempted;
  response.completed = outcome.completed;
  response.quarantined = outcome.quarantined;
  response.retries = outcome.retries;
  response.output = std::move(outcome.output);
  session->send_frame(FrameType::kResponse, job.request_id,
                      encode_response(response));

  const std::uint64_t latency = elapsed_ms(job.admitted_at);
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.completed;
  stats_.total_latency_ms += latency;
  if (latency > stats_.max_latency_ms) stats_.max_latency_ms = latency;
  stats_.quarantined += outcome.quarantined;
}

std::string Server::render_stats(bool json) const {
  const ServerStats s = stats();
  std::ostringstream os;
  if (json) {
    util::JsonWriter w(os, /*pretty=*/true);
    w.begin_object();
    w.kv("connections", s.connections);
    w.kv("active_sessions", s.active_sessions);
    w.kv("queue_depth", s.queue_depth);
    w.kv("admitted", s.admitted);
    w.kv("completed", s.completed);
    w.kv("shed", s.shed);
    w.kv("failed", s.failed);
    w.kv("abandoned", s.abandoned);
    w.kv("protocol_errors", s.protocol_errors);
    w.kv("total_latency_ms", s.total_latency_ms);
    w.kv("max_latency_ms", s.max_latency_ms);
    w.kv("quarantined", s.quarantined);
    w.kv("chunks_streamed", s.chunks_streamed);
    w.key("cache");
    w.begin_object();
    w.kv("lookups", s.cache.lookups);
    w.kv("hits", s.cache.hits);
    w.kv("disk_hits", s.cache.disk_hits);
    w.kv("corrupt_discarded", s.cache.corrupt_discarded);
    w.kv("write_failures", s.cache.write_failures);
    w.end_object();
    w.key("des");
    w.begin_object();
    w.kv("runs", s.des.runs);
    w.kv("events", s.des.events);
    w.kv("wall_ms", s.des.wall_ms);
    w.kv("events_per_second", s.des.events_per_second());
    w.end_object();
    w.end_object();
    os << "\n";
    return os.str();
  }
  util::TextTable table;
  table.set_columns({"counter", "value"},
                    {util::Align::kLeft, util::Align::kRight});
  const auto row = [&table](const char* name, std::uint64_t v) {
    table.add_row({name, std::to_string(v)});
  };
  row("connections", s.connections);
  row("active sessions", s.active_sessions);
  row("queue depth", s.queue_depth);
  row("admitted", s.admitted);
  row("completed", s.completed);
  row("shed (overloaded)", s.shed);
  row("failed", s.failed);
  row("abandoned", s.abandoned);
  row("protocol errors", s.protocol_errors);
  row("total latency ms", s.total_latency_ms);
  row("max latency ms", s.max_latency_ms);
  row("quarantined", s.quarantined);
  row("chunks streamed", s.chunks_streamed);
  row("cache lookups", s.cache.lookups);
  row("cache hits", s.cache.hits);
  row("cache disk hits", s.cache.disk_hits);
  row("des runs", s.des.runs);
  row("des events", s.des.events);
  row("des events/sec",
      static_cast<std::uint64_t>(s.des.events_per_second()));
  table.render(os);
  return os.str();
}

}  // namespace ct::service
