// The framework beyond Oahu: defines a fictional island region and SCADA
// topology from scratch and runs the same compound-threat analysis,
// demonstrating that nothing in the pipeline is hard-wired to the paper's
// case study — a practitioner supplies terrain, assets, a storm climate,
// and siting candidates.
//
// Usage: custom_region [realizations]
#include <cstdlib>
#include <iostream>
#include <memory>

#include "core/case_study.h"
#include "core/report.h"
#include "core/siting.h"
#include "scada/asset.h"
#include "scada/configuration.h"
#include "terrain/terrain.h"
#include "threat/scenario.h"
#include "util/strings.h"

using namespace ct;

namespace {

/// "Isla Verde": a fictional elongated island with one mountain spine,
/// a low eastern port city and a high western plateau town.
std::unique_ptr<terrain::SyntheticIslandTerrain> make_isla_verde() {
  terrain::IslandParams p;
  p.name = "Isla Verde (fictional)";
  p.coastline = {
      {10.00, -60.00}, {10.02, -59.85}, {10.10, -59.70}, {10.25, -59.62},
      {10.40, -59.68}, {10.47, -59.85}, {10.45, -60.05}, {10.35, -60.18},
      {10.18, -60.15}, {10.05, -60.10},
  };
  p.projection_reference = {10.25, -59.9};
  p.ridges = {{{10.15, -60.05}, {10.38, -59.80}, 900.0, 5000.0}};
  p.shore_elevation_m = 0.8;
  p.plain_slope = 0.005;
  return std::make_unique<terrain::SyntheticIslandTerrain>(p);
}

scada::ScadaTopology make_topology() {
  scada::ScadaTopology topo;
  topo.add({"port_cc", "Port City Control Center",
            scada::AssetType::kControlCenter, {10.24, -59.64}, 1.0});
  topo.add({"plateau_cc", "Plateau Control Center",
            scada::AssetType::kControlCenter, {10.27, -59.95}, 40.0});
  topo.add({"bay_dc", "Bay Data Center", scada::AssetType::kDataCenter,
            {10.06, -60.05}, 2.5});
  topo.add({"port_pp", "Port Power Plant", scada::AssetType::kPowerPlant,
            {10.23, -59.65}, 1.2});
  topo.add({"north_ss", "North Substation", scada::AssetType::kSubstation,
            {10.44, -59.90}, 4.0});
  return topo;
}

}  // namespace

int main(int argc, char** argv) {
  core::CaseStudyOptions options;
  options.realizations = 400;
  if (argc > 1) options.realizations = std::strtoul(argv[1], nullptr, 10);

  // Storm climate for this region: CAT-2 storms approaching from the
  // south-east, aimed at the island's eastern (port) side.
  options.realization.ensemble.base_aim = {10.05, -59.70};
  options.realization.ensemble.base_heading_deg = 315.0;

  core::CaseStudyRunner runner(make_topology(), make_isla_verde(), options);

  std::cout << "Compound-threat analysis of a user-defined region ("
            << options.realizations << " realizations)\n\n"
            << "asset flood probabilities:\n";
  for (const char* id : {"port_cc", "plateau_cc", "bay_dc", "port_pp"}) {
    std::cout << "  " << id << ": "
              << util::format_percent(runner.asset_flood_probability(id), 1)
              << "\n";
  }

  const auto configs =
      scada::paper_configurations("port_cc", "plateau_cc", "bay_dc");
  for (const threat::ThreatScenario scenario : threat::all_scenarios()) {
    std::cout << "\n=== " << threat::scenario_name(scenario) << " ===\n";
    core::profile_table(runner.run_configs(configs, scenario))
        .render(std::cout);
  }

  // Siting question for this island: where should the backup go?
  core::SitingOptimizer optimizer(runner);
  const auto scores = optimizer.rank_backup_sites(
      "port_cc", {"plateau_cc", "bay_dc", "north_ss"},
      threat::ThreatScenario::kHurricane);
  std::cout << "\nbest \"6-6\" backup sites for the port-city primary:\n";
  for (const auto& s : scores) {
    std::cout << "  " << s.chosen[0] << ": green "
              << util::format_percent(s.green_probability, 1)
              << ", E[badness] " << util::format_fixed(s.expected_badness, 3)
              << "\n";
  }
  return 0;
}
