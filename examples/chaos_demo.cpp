// Chaos-testing demo: generates a seeded benign fault plan, prints its
// replayable schedule, runs the protocol DES under it, and shows that the
// Table-I color is unchanged while the invariant monitor stays silent.
// Then injects an f+1 compromise plan and shows detection plus greedy
// shrinking to a minimal reproducer.
//
// Usage: chaos_demo [seed]
#include <cstdint>
#include <cstdlib>
#include <iostream>

#include "core/chaos.h"
#include "core/evaluator.h"
#include "scada/configuration.h"
#include "sim/fault_injector.h"
#include "sim/scada_des.h"
#include "threat/scenario.h"
#include "threat/system_state.h"
#include "util/rng.h"

using namespace ct;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  const scada::Configuration config = scada::make_config_6_6("oahu", "kapolei");
  const sim::DesOptions des_options = core::chaos_des_options();

  // 1. A seeded benign plan: crash/restart, flapping, skew, duplication,
  //    reordering — everything a correct stack must ride through.
  std::vector<int> nodes_per_site;
  for (const scada::ControlSite& site : config.sites) {
    nodes_per_site.push_back(site.replicas);
  }
  util::Rng rng(seed, "chaos-demo");
  const sim::FaultPlan plan =
      sim::random_benign_plan(sim::BenignPlanShape{}, nodes_per_site, rng);
  std::cout << "benign fault plan (seed " << seed << "):\n"
            << plan.to_schedule() << "\n";

  // 2. Run the compound-threat DES with the plan layered on top.
  threat::SystemState clean;
  clean.site_status.assign(config.sites.size(), threat::SiteStatus::kUp);
  clean.intrusions.assign(config.sites.size(), 0);
  const threat::OperationalState expected = core::evaluate(config, clean);
  const sim::ScadaDes des(config, des_options);
  const sim::DesOutcome outcome = des.run(clean, plan);
  std::cout << "configuration " << config.name << ": analytic color "
            << threat::state_name(expected) << ", observed "
            << threat::state_name(outcome.observed) << "\n"
            << "  drops: loss=" << outcome.drops.loss
            << " crashed=" << outcome.drops.crashed
            << " link=" << outcome.drops.link_down
            << " site=" << outcome.drops.site_down
            << " in-flight=" << outcome.drops.in_flight
            << ", duplicates=" << outcome.duplicates << "\n"
            << "  invariant violations: "
            << outcome.invariant_violations.size() << "\n\n";

  // 3. The schedule round-trips: replaying the printed text reproduces the
  //    exact same run.
  const sim::FaultPlan replayed =
      sim::FaultPlan::parse_schedule(plan.to_schedule());
  const sim::DesOutcome again = des.run(clean, replayed);
  std::cout << "replay from printed schedule: observed "
            << threat::state_name(again.observed) << " (identical run: "
            << (again.observed == outcome.observed &&
                        again.drops.total() == outcome.drops.total()
                    ? "yes"
                    : "NO")
            << ")\n\n";

  // 4. Detection probe: one more compromise than the architecture
  //    tolerates must be caught, and the plan shrinks to the f+1 core.
  const core::ChaosRunner runner;
  const core::ChaosFinding finding = runner.compromise_probe(config);
  std::cout << "compromise probe on " << config.name << ": expected "
            << threat::state_name(finding.expected) << ", observed "
            << threat::state_name(finding.observed)
            << " -> minimal reproducer ("
            << finding.minimal_plan.events.size() << " events):\n"
            << finding.replay_schedule;
  return 0;
}
