// ctserved — the embedded analysis server. Binds a Unix-domain socket
// and/or a TCP loopback port, multiplexes every connected ctctl (or
// library client) onto one shared work-stealing pool and one
// content-addressed result cache, and streams sweep progress while long
// requests run. See src/service/server.h for the concurrency shape and
// DESIGN.md §13 for the architecture.
//
//   ctserved --listen unix:/tmp/ct.sock
//   ctserved --listen tcp:127.0.0.1:0        # ephemeral port, printed
//   ctserved --listen unix:/tmp/ct.sock --listen tcp:127.0.0.1:7733
//            --jobs 8 --queue-capacity 16 --deadline-ms 60000
//
// Flags:
//   --listen <addr>         repeatable: unix:<path> and/or tcp:<host>:<port>
//                           (TCP binds loopback; port 0 = ephemeral)
//   --jobs <n>              worker threads (0 = all cores)
//   --queue-capacity <n>    admitted-but-unserved requests before load
//                           shedding answers kOverloaded (default 8)
//   --deadline-ms <n>       default per-request deadline (0 = none)
//   --stream-interval <n>   realizations per progress chunk (default 128)
//   --sessions <n>          warm case-study sessions kept (default 4)
//   --no-disk-cache         keep the result cache in memory only
//   --fault <spec>          runtime fault-injection spec (testing)
//
// SIGINT/SIGTERM drain gracefully: listeners close, queued work finishes,
// then sessions are torn down. Exit codes: 0 clean shutdown, 1 runtime
// error, 2 usage.
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "service/server.h"
#include "util/strings.h"

using namespace ct;

namespace {

int usage() {
  std::cerr << "usage: ctserved --listen <unix:<path>|tcp:<host>:<port>> "
               "[--listen <addr>] [--jobs <n>] [--queue-capacity <n>] "
               "[--deadline-ms <n>] [--stream-interval <n>] [--sessions <n>] "
               "[--no-disk-cache] [--fault <spec>]\n";
  return 2;
}

// Self-pipe shutdown: the handler only write()s one byte (async-signal-
// safe); the main thread blocks on the read end and runs the graceful
// drain when it wakes.
int g_shutdown_pipe[2] = {-1, -1};

extern "C" void handle_shutdown_signal(int) {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_shutdown_pipe[1], &byte, 1);
}

unsigned long parse_count(const std::string& value, const char* flag) {
  char* end = nullptr;
  const unsigned long v = std::strtoul(value.c_str(), &end, 10);
  if (value.empty() || *end != '\0') {
    throw std::invalid_argument(std::string(flag) + " expects a number, got " +
                                value);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  service::ServerOptions options;
  options.defaults.runtime.disk_cache = true;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string key = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) {
          throw std::invalid_argument("flag " + key + " expects a value");
        }
        return argv[++i];
      };
      if (key == "--listen") {
        const service::Address addr = service::parse_address(value());
        if (addr.is_unix) {
          options.unix_path = addr.path;
        } else {
          options.tcp = true;
          options.tcp_port = addr.port;
        }
      } else if (key == "--jobs") {
        options.defaults.runtime.jobs =
            static_cast<unsigned>(parse_count(value(), "--jobs"));
      } else if (key == "--queue-capacity") {
        options.queue_capacity = parse_count(value(), "--queue-capacity");
      } else if (key == "--deadline-ms") {
        options.default_deadline_ms = static_cast<std::uint32_t>(
            parse_count(value(), "--deadline-ms"));
      } else if (key == "--stream-interval") {
        options.stream_interval = parse_count(value(), "--stream-interval");
      } else if (key == "--sessions") {
        options.session_cap = parse_count(value(), "--sessions");
      } else if (key == "--no-disk-cache") {
        options.defaults.runtime.disk_cache = false;
      } else if (key == "--fault") {
        options.defaults.runtime.fault_spec = value();
      } else {
        std::cerr << "ctserved: unknown flag " << key << "\n";
        return usage();
      }
    }
    if (options.unix_path.empty() && !options.tcp) return usage();

    if (::pipe(g_shutdown_pipe) != 0) {
      std::cerr << "ctserved: pipe: " << std::strerror(errno) << "\n";
      return 1;
    }

    service::Server server(options);
    server.start();
    if (!options.unix_path.empty()) {
      std::cout << "ctserved: listening on unix:" << options.unix_path << "\n";
    }
    if (options.tcp) {
      std::cout << "ctserved: listening on tcp:127.0.0.1:"
                << server.tcp_port() << "\n";
    }
    std::cout.flush();

    std::signal(SIGINT, handle_shutdown_signal);
    std::signal(SIGTERM, handle_shutdown_signal);
    char byte = 0;
    while (::read(g_shutdown_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    std::cerr << "ctserved: draining...\n";
    server.stop();
    std::cerr << "ctserved: stopped\n";
    return 0;
  } catch (const std::invalid_argument& e) {
    std::cerr << "ctserved: " << e.what() << "\n";
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "ctserved: " << e.what() << "\n";
    return 1;
  }
}
