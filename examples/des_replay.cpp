// Replays one compound-threat timeline through the protocol-level
// discrete-event simulator and prints the event trace: floods at t=0, the
// cyberattack at t=200 s, heartbeats and view changes, cold-site
// activation, and the client's observed service. Shows WHY a configuration
// lands in each color, not just THAT it does.
//
// Usage: des_replay [config] [scenario] [flooded-sites]
//   config:  2 | 2-2 | 6 | 6-6 | 6+6+6            (default 6-6)
//   scenario: hurricane | intrusion | isolation | both   (default both)
//   flooded-sites: comma-separated site indices flooded at t=0 (default none)
#include <iostream>
#include <string>

#include "core/evaluator.h"
#include "scada/configuration.h"
#include "sim/scada_des.h"
#include "threat/attacker.h"
#include "threat/scenario.h"
#include "util/strings.h"

using namespace ct;

namespace {

scada::Configuration pick_config(const std::string& name) {
  if (name == "2") return scada::make_config_2("honolulu");
  if (name == "2-2") return scada::make_config_2_2("honolulu", "waiau");
  if (name == "6") return scada::make_config_6("honolulu");
  if (name == "6-6") return scada::make_config_6_6("honolulu", "waiau");
  if (name == "6+6+6") {
    return scada::make_config_6_6_6("honolulu", "waiau", "drfortress");
  }
  throw std::invalid_argument("unknown config: " + name);
}

threat::ThreatScenario pick_scenario(const std::string& name) {
  if (name == "hurricane") return threat::ThreatScenario::kHurricane;
  if (name == "intrusion") return threat::ThreatScenario::kHurricaneIntrusion;
  if (name == "isolation") return threat::ThreatScenario::kHurricaneIsolation;
  if (name == "both") {
    return threat::ThreatScenario::kHurricaneIntrusionIsolation;
  }
  throw std::invalid_argument("unknown scenario: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string config_name = argc > 1 ? argv[1] : "6-6";
  const std::string scenario_name = argc > 2 ? argv[2] : "both";
  const std::string flooded_arg = argc > 3 ? argv[3] : "";

  const scada::Configuration config = pick_config(config_name);
  const threat::ThreatScenario scenario = pick_scenario(scenario_name);

  std::vector<bool> flooded(config.sites.size(), false);
  if (!flooded_arg.empty()) {
    for (const std::string& tok : util::split(flooded_arg, ',')) {
      const auto index = static_cast<std::size_t>(
          std::strtoul(std::string(util::trim(tok)).c_str(), nullptr, 10));
      if (index < flooded.size()) flooded[index] = true;
    }
  }

  sim::DesOptions options;
  options.tracing = true;

  std::cout << "Replaying configuration \"" << config.name << "\" under "
            << threat::scenario_name(scenario) << "\nsites:";
  for (std::size_t i = 0; i < config.sites.size(); ++i) {
    std::cout << " [" << i << "] " << config.sites[i].asset_id << " ("
              << config.sites[i].replicas << " replicas, "
              << (config.sites[i].hot ? "hot" : "cold")
              << (flooded[i] ? ", FLOODED" : "") << ")";
  }
  std::cout << "\ntimeline: floods at t=0, cyberattack at t="
            << options.attack_time_s << " s, horizon " << options.horizon_s
            << " s\n\n";

  const sim::ScadaDes des(config, options);
  const sim::DesOutcome outcome =
      des.run(flooded, threat::capability_for(scenario));

  std::cout << "--- event trace ---\n";
  for (const std::string& line : outcome.trace) std::cout << line << "\n";

  // Analytic cross-check.
  threat::SystemState base;
  base.intrusions.assign(config.sites.size(), 0);
  for (const bool f : flooded) {
    base.site_status.push_back(f ? threat::SiteStatus::kFlooded
                                 : threat::SiteStatus::kUp);
  }
  const threat::SystemState attacked = threat::GreedyWorstCaseAttacker{}.attack(
      config, base, threat::capability_for(scenario));

  // Availability over time: the shape of the incident (outage + recovery).
  std::cout << "\n--- service availability, one glyph per 60 s ('#'=up, "
               "'o'=degraded, '.'=down, ' '=no data) ---\n";
  for (const double a : outcome.availability_timeline) {
    if (a < 0.0) {
      std::cout << ' ';
    } else if (a > 0.9) {
      std::cout << '#';
    } else if (a > 0.1) {
      std::cout << 'o';
    } else {
      std::cout << '.';
    }
  }
  std::cout << "\n";

  std::cout << "\n--- outcome ---\n"
            << "observed operational state : "
            << threat::state_name(outcome.observed) << "\n"
            << "analytic (Table I) state   : "
            << threat::state_name(core::evaluate(config, attacked)) << "\n"
            << "steady-state availability  : "
            << util::format_percent(outcome.steady_availability, 1) << "\n"
            << "longest service gap        : "
            << util::format_fixed(outcome.max_outage_s, 1) << " s\n"
            << "safety violated            : "
            << (outcome.safety_violated ? "YES" : "no") << "\n"
            << "simulation cost            : " << outcome.events
            << " events, " << outcome.messages << " messages\n";
  return 0;
}
