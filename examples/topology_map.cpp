// ASCII rendering of the case-study geography (the paper's Fig. 4): the
// Oahu terrain, the SCADA asset topology, and — for a chosen hurricane
// realization — which assets the surge took out.
//
// Usage: topology_map [realization-index]
//   Without arguments renders the static topology; with an index it runs
//   that hurricane realization and marks flooded assets with 'X'.
//   Tip: indices of flooding realizations vary by seed; try a few dozen.
#include <cstdlib>
#include <iostream>
#include <optional>

#include "core/map.h"
#include "scada/oahu.h"
#include "surge/realization.h"
#include "terrain/oahu.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace ct;

  const auto terrain = terrain::make_oahu_terrain();
  const scada::ScadaTopology topo = scada::oahu_topology();

  std::optional<surge::HurricaneRealization> realization;
  if (argc > 1) {
    const auto index = std::strtoull(argv[1], nullptr, 10);
    const surge::RealizationEngine engine(terrain::make_oahu_terrain(),
                                          topo.exposed_assets(), {});
    realization = engine.run(index);
    std::cout << "hurricane realization " << index << ": peak wind "
              << util::format_fixed(realization->peak_wind_ms, 1)
              << " m/s, max shoreline WSE "
              << util::format_fixed(realization->max_shoreline_wse_m, 2)
              << " m\n\n";
  }

  std::cout << core::render_region_map(
      *terrain, topo, realization ? &*realization : nullptr);

  if (realization) {
    std::cout << "\nper-asset impact:\n";
    for (const auto& impact : realization->impacts) {
      if (impact.water_level_m < 0.05) continue;
      std::cout << "  " << impact.asset_id << ": water "
                << util::format_fixed(impact.water_level_m, 2) << " m, depth "
                << util::format_fixed(impact.inundation_depth_m, 2) << " m"
                << (impact.failed ? "  ** FAILED **" : "") << "\n";
    }
  }
  return 0;
}
