// Answers the paper's §VII question: "How should we choose additional
// control site locations to maximize availability when increasing
// redundancy for compound threat scenarios?" — by exhaustively scoring
// every candidate siting against the hurricane ensemble under every threat
// scenario.
//
// Usage: siting_optimization [realizations]
#include <cstdlib>
#include <iostream>

#include "core/case_study.h"
#include "core/siting.h"
#include "scada/oahu.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace ct;

  core::CaseStudyOptions options;
  options.realizations = 500;
  if (argc > 1) options.realizations = std::strtoul(argv[1], nullptr, 10);

  core::CaseStudyRunner runner = core::make_oahu_case_study(options);
  core::SitingOptimizer optimizer(runner);
  const auto candidates = scada::oahu_control_site_candidates();

  std::cout << "Control-site placement optimization (" << options.realizations
            << " realizations)\n"
            << "primary fixed at Honolulu; candidates: "
            << util::join(candidates, ", ") << "\n\n";

  for (const threat::ThreatScenario scenario : threat::all_scenarios()) {
    std::cout << "=== scenario: " << threat::scenario_name(scenario)
              << " ===\n\nbest backup for \"6-6\":\n";
    util::TextTable backup_table;
    backup_table.set_columns({"rank", "backup site", "green", "E[badness]"},
                             {util::Align::kRight, util::Align::kLeft,
                              util::Align::kRight, util::Align::kRight});
    std::size_t rank = 1;
    for (const auto& score : optimizer.rank_backup_sites(
             scada::oahu_ids::kHonoluluCc, candidates, scenario)) {
      backup_table.add_row({std::to_string(rank++), score.chosen[0],
                            util::format_percent(score.green_probability, 1),
                            util::format_fixed(score.expected_badness, 3)});
    }
    backup_table.render(std::cout);

    std::cout << "\nbest (second CC, data center) pair for \"6+6+6\":\n";
    util::TextTable pair_table;
    pair_table.set_columns({"rank", "pair", "green", "E[badness]"},
                           {util::Align::kRight, util::Align::kLeft,
                            util::Align::kRight, util::Align::kRight});
    rank = 1;
    for (const auto& score : optimizer.rank_site_pairs(
             scada::oahu_ids::kHonoluluCc, candidates, scenario)) {
      pair_table.add_row({std::to_string(rank++),
                          util::join(score.chosen, " + "),
                          util::format_percent(score.green_probability, 1),
                          util::format_fixed(score.expected_badness, 3)});
    }
    pair_table.render(std::cout);
    std::cout << "\n";
  }

  std::cout << "The paper's finding reproduces: Waiau, although attractive "
               "for connectivity,\nis dominated by Kahe (or any dry site) "
               "because its hurricane failures are\ncorrelated with the "
               "Honolulu primary's.\n";
  return 0;
}
