// Hurricane-model explorer: inspects the natural-disaster stage on its own.
// Prints, for each control-site asset, the distribution of water levels and
// inundation depths across the realization ensemble, plus storm statistics —
// the view a practitioner would use to sanity-check the surge model before
// trusting the compound-threat analysis built on it.
//
// Usage: hurricane_explorer [realizations]
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "scada/oahu.h"
#include "surge/realization.h"
#include "terrain/oahu.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace ct;

  std::size_t n = 500;
  if (argc > 1) n = std::strtoul(argv[1], nullptr, 10);

  const scada::ScadaTopology topo = scada::oahu_topology();
  surge::RealizationEngine engine(terrain::make_oahu_terrain(),
                                  topo.exposed_assets(), {});
  std::cout << "running " << n << " CAT-2 realizations on "
            << engine.terrain().name() << "\n"
            << "mesh: " << engine.coastal_mesh().mesh.node_count()
            << " nodes, " << engine.coastal_mesh().stations.size()
            << " shoreline stations\n\n";

  const std::vector<surge::HurricaneRealization> batch = engine.run_batch(n);

  util::RunningStats wind;
  util::RunningStats peak_wse;
  for (const auto& r : batch) {
    wind.add(r.peak_wind_ms);
    peak_wse.add(r.max_shoreline_wse_m);
  }
  std::cout << "storm peak surface wind (m/s): mean "
            << util::format_fixed(wind.mean(), 1) << ", min "
            << util::format_fixed(wind.min(), 1) << ", max "
            << util::format_fixed(wind.max(), 1) << "\n";
  std::cout << "island-max shoreline WSE (m): mean "
            << util::format_fixed(peak_wse.mean(), 2) << ", max "
            << util::format_fixed(peak_wse.max(), 2) << "\n\n";

  util::TextTable table;
  table.set_columns({"asset", "elev(m)", "p50 wl", "p90 wl", "p99 wl",
                     "max wl", "max depth", "P(fail)"},
                    {util::Align::kLeft, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight});

  for (std::size_t a = 0; a < topo.assets().size(); ++a) {
    const scada::Asset& asset = topo.assets()[a];
    std::vector<double> water;
    double max_depth = 0.0;
    std::size_t failures = 0;
    water.reserve(batch.size());
    for (const auto& r : batch) {
      const surge::AssetImpact& impact = r.impacts[a];
      water.push_back(impact.water_level_m);
      max_depth = std::max(max_depth, impact.inundation_depth_m);
      if (impact.failed) ++failures;
    }
    table.add_row(
        {asset.id, util::format_fixed(asset.ground_elevation_m, 1),
         util::format_fixed(util::exact_quantile(water, 0.5), 2),
         util::format_fixed(util::exact_quantile(water, 0.9), 2),
         util::format_fixed(util::exact_quantile(water, 0.99), 2),
         util::format_fixed(util::exact_quantile(water, 1.0), 2),
         util::format_fixed(max_depth, 2),
         util::format_percent(static_cast<double>(failures) /
                              static_cast<double>(batch.size()), 1)});
  }
  table.render(std::cout);

  // Correlation structure between the paper's two control-center sites:
  // the case study hinges on Honolulu and Waiau flooding together.
  std::vector<double> hon;
  std::vector<double> wai;
  std::size_t hon_index = 0;
  std::size_t wai_index = 0;
  for (std::size_t a = 0; a < topo.assets().size(); ++a) {
    if (topo.assets()[a].id == scada::oahu_ids::kHonoluluCc) hon_index = a;
    if (topo.assets()[a].id == scada::oahu_ids::kWaiauCc) wai_index = a;
  }
  for (const auto& r : batch) {
    hon.push_back(r.impacts[hon_index].water_level_m);
    wai.push_back(r.impacts[wai_index].water_level_m);
  }
  double mh = 0;
  double mw = 0;
  for (std::size_t i = 0; i < hon.size(); ++i) {
    mh += hon[i];
    mw += wai[i];
  }
  mh /= static_cast<double>(hon.size());
  mw /= static_cast<double>(wai.size());
  double sxy = 0;
  double sxx = 0;
  double syy = 0;
  for (std::size_t i = 0; i < hon.size(); ++i) {
    sxy += (hon[i] - mh) * (wai[i] - mw);
    sxx += (hon[i] - mh) * (hon[i] - mh);
    syy += (wai[i] - mw) * (wai[i] - mw);
  }
  const double corr = sxy / std::sqrt(sxx * syy);
  const double th = util::exact_quantile(hon, 0.905);
  const double tw = util::exact_quantile(wai, 0.905);
  std::size_t both = 0;
  std::size_t h_only = 0;
  std::size_t w_only = 0;
  for (std::size_t i = 0; i < hon.size(); ++i) {
    const bool fh = hon[i] > th;
    const bool fw = wai[i] > tw;
    if (fh && fw) ++both;
    if (fh && !fw) ++h_only;
    if (!fh && fw) ++w_only;
  }
  for (const double wq : {0.905, 0.89, 0.875, 0.86, 0.845}) {
    const double twq = util::exact_quantile(wai, wq);
    std::size_t ho = 0;
    std::size_t wo = 0;
    for (std::size_t i = 0; i < hon.size(); ++i) {
      if (hon[i] > th && wai[i] <= twq) ++ho;
      if (hon[i] <= th && wai[i] > twq) ++wo;
    }
    std::cout << "waiau q" << wq << " thr " << util::format_fixed(twq, 3)
              << " (elev " << util::format_fixed(twq - 0.5, 2)
              << "): hon-only " << ho << ", waiau-only " << wo << "\n";
  }
  std::cout << "\nhonolulu-waiau water-level correlation: "
            << util::format_fixed(corr, 4) << "\n"
            << "q90.5 thresholds: honolulu " << util::format_fixed(th, 3)
            << " (elev " << util::format_fixed(th - 0.5, 2) << "), waiau "
            << util::format_fixed(tw, 3) << " (elev "
            << util::format_fixed(tw - 0.5, 2) << ")\n"
            << "flood-set agreement at matched quantiles: both " << both
            << ", honolulu-only " << h_only << ", waiau-only " << w_only
            << "\n";
  return 0;
}
