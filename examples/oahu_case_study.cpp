// The paper's full case study (§VI): five SCADA architectures, four
// compound-threat scenarios, two siting variants — everything behind
// Figures 6 through 11 — with CSV export for downstream plotting.
//
// Usage: oahu_case_study [realizations] [output.csv]
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "core/case_study.h"
#include "core/report.h"
#include "scada/oahu.h"
#include "threat/scenario.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace ct;

  core::CaseStudyOptions options;
  options.realizations = 1000;
  if (argc > 1) options.realizations = std::strtoul(argv[1], nullptr, 10);
  const std::string csv_path = argc > 2 ? argv[2] : "";

  std::cout << "Oahu compound-threat case study, " << options.realizations
            << " CAT-2 hurricane realizations\n\n";
  core::CaseStudyRunner runner = core::make_oahu_case_study(options);

  std::cout << "natural-disaster stage:\n"
            << "  P(Honolulu CC flooded) = "
            << util::format_percent(runner.asset_flood_probability(
                   scada::oahu_ids::kHonoluluCc))
            << " (paper: 9.5%)\n"
            << "  P(Waiau flooded | Honolulu flooded) = "
            << util::format_percent(runner.conditional_flood_probability(
                   scada::oahu_ids::kWaiauCc, scada::oahu_ids::kHonoluluCc))
            << " (paper: 100%)\n"
            << "  P(Kahe flooded) = "
            << util::format_percent(
                   runner.asset_flood_probability(scada::oahu_ids::kKaheCc))
            << " (paper: 0%)\n\n";

  std::ofstream csv_file;
  if (!csv_path.empty()) csv_file.open(csv_path);

  struct Figure {
    const char* id;
    threat::ThreatScenario scenario;
    const char* backup;
  };
  const Figure figures[] = {
      {"fig6", threat::ThreatScenario::kHurricane, scada::oahu_ids::kWaiauCc},
      {"fig7", threat::ThreatScenario::kHurricaneIntrusion,
       scada::oahu_ids::kWaiauCc},
      {"fig8", threat::ThreatScenario::kHurricaneIsolation,
       scada::oahu_ids::kWaiauCc},
      {"fig9", threat::ThreatScenario::kHurricaneIntrusionIsolation,
       scada::oahu_ids::kWaiauCc},
      {"fig10", threat::ThreatScenario::kHurricane, scada::oahu_ids::kKaheCc},
      {"fig11", threat::ThreatScenario::kHurricaneIntrusion,
       scada::oahu_ids::kKaheCc},
  };

  for (const Figure& figure : figures) {
    const auto configs = scada::paper_configurations(
        scada::oahu_ids::kHonoluluCc, figure.backup,
        scada::oahu_ids::kDrFortress);
    const auto results = runner.run_configs(configs, figure.scenario);

    std::cout << "--- " << figure.id << ": "
              << threat::scenario_name(figure.scenario) << " (backup: "
              << figure.backup << ") ---\n";
    core::profile_table(results).render(std::cout);
    const double delta =
        core::max_abs_delta(results, core::paper_expected(figure.id));
    std::cout << "max delta vs paper: "
              << util::format_fixed(delta * 100.0, 2) << " pp\n\n";

    if (csv_file.is_open()) {
      core::write_profiles_csv(csv_file, figure.id, results);
    }
  }

  if (csv_file.is_open()) {
    std::cout << "profiles written to " << csv_path << "\n";
  }
  return 0;
}
