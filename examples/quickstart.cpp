// Quickstart: the whole framework in one page.
//
//   1. Build the Oahu case study (synthetic terrain + Fig. 4 topology).
//   2. Run hurricane realizations (default 1000; pass a count to override).
//   3. Analyze the five paper architectures under all four compound-threat
//      scenarios and print their operational profiles.
//
// Usage: quickstart [realizations]
#include <cstdlib>
#include <iostream>

#include "core/case_study.h"
#include "core/report.h"
#include "scada/oahu.h"
#include "scada/requirements.h"
#include "threat/scenario.h"

int main(int argc, char** argv) {
  using namespace ct;

  core::CaseStudyOptions options;
  if (argc > 1) options.realizations = std::strtoul(argv[1], nullptr, 10);

  std::cout << "Compound-threat analysis quickstart (Oahu, CAT-2 hurricane)\n"
            << "realizations: " << options.realizations << "\n\n";

  // Why the architectures look the way they do:
  std::cout << scada::explain_single_site(1, 1) << "\n"
            << scada::explain_active_multisite(3, 1, 1) << "\n\n";

  core::CaseStudyRunner runner = core::make_oahu_case_study(options);

  // Natural-disaster stage: who floods, how often?
  std::cout << "asset flood probabilities:\n";
  for (const char* id :
       {scada::oahu_ids::kHonoluluCc, scada::oahu_ids::kWaiauCc,
        scada::oahu_ids::kKaheCc, scada::oahu_ids::kDrFortress,
        scada::oahu_ids::kAlohaNap}) {
    std::cout << "  " << id << ": "
              << runner.asset_flood_probability(id) * 100.0 << "%\n";
  }
  std::cout << "  P(waiau flooded | honolulu flooded) = "
            << runner.conditional_flood_probability(
                   scada::oahu_ids::kWaiauCc, scada::oahu_ids::kHonoluluCc) *
                   100.0
            << "%\n"
            << "  P(kahe flooded | honolulu flooded)  = "
            << runner.conditional_flood_probability(
                   scada::oahu_ids::kKaheCc, scada::oahu_ids::kHonoluluCc) *
                   100.0
            << "%\n\n";

  // Compound-threat stage: the paper's five architectures, four scenarios.
  const std::vector<scada::Configuration> configs = scada::paper_configurations(
      scada::oahu_ids::kHonoluluCc, scada::oahu_ids::kWaiauCc,
      scada::oahu_ids::kDrFortress);

  for (const threat::ThreatScenario scenario : threat::all_scenarios()) {
    std::cout << "=== " << threat::scenario_name(scenario) << " ===\n";
    const auto results = runner.run_configs(configs, scenario);
    core::profile_table(results).render(std::cout);
    std::cout << "\n";
  }
  return 0;
}
