// ctctl — command-line front end to the compound-threat framework. The
// adoption path for practitioners: export the built-in Oahu topology,
// edit the CSV (or export one from a GIS), and analyze custom sitings
// without writing C++.
//
//   ctctl topology export <file.csv>       write the built-in Oahu topology
//   ctctl topology validate <file.csv>     parse + summarize a topology CSV
//   ctctl map [realization]                ASCII region map (optionally with
//                                          one realization's floods)
//   ctctl analyze [options]                operational profiles, 4 scenarios
//     --topology <file.csv>                default: built-in Oahu
//     --primary/--backup/--dc <asset id>   default: honolulu/waiau/drfortress
//     --realizations <n>                   default: 1000
//     --slr <meters>                       sea-level-rise offset
//     --jobs <n>                           worker threads (0 = all cores,
//                                          1 = serial; default 0)
//     --no-cache                           recompute everything: disable the
//                                          result cache (default: on-disk
//                                          cache under CT_CACHE_DIR or
//                                          ~/.cache/ct, so a repeated
//                                          analyze of the same inputs is
//                                          served from cache)
//     --max-retries <n>                    re-runs of a failed realization
//                                          (same seed) before it is
//                                          quarantined (default 2)
//     --best-effort                        degraded runs (quarantined
//                                          realizations) report partial
//                                          results and exit 0 (default)
//     --strict                             degraded runs exit 3 after
//                                          printing the failure summary
//     --checkpoint-dir <dir>               journal completed work under
//                                          <dir> so a killed or interrupted
//                                          analyze can continue instead of
//                                          restarting (see --resume)
//     --checkpoint-interval <n>            realizations per checkpoint
//                                          record (default 128): the most
//                                          work a crash can lose
//     --resume                             continue from the checkpoint
//                                          state under --checkpoint-dir;
//                                          stale state (different inputs)
//                                          or corruption falls back to a
//                                          cold start, loudly
//   ctctl downtime [same options]          restoration costs in hours
//
// With --checkpoint-dir, SIGINT/SIGTERM interrupt the sweep at the next
// checkpoint boundary after a final flush and exit 5 ("interrupted,
// resumable"); rerun with --resume to continue from the saved state.
//
// Exit codes: 0 success (incl. best-effort degraded), 1 runtime error,
// 2 usage, 3 degraded under --strict, 4 no realization completed,
// 5 interrupted but resumable.
#include <atomic>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/case_study.h"
#include "core/map.h"
#include "core/report.h"
#include "core/restoration.h"
#include "scada/oahu.h"
#include "scada/topology_io.h"
#include "terrain/oahu.h"
#include "threat/scenario.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ct;

namespace {

int usage() {
  std::cerr << "usage: ctctl <topology export|topology validate|map|analyze|"
               "downtime> [options]\n(see the header of examples/ctctl.cpp "
               "for details)\n";
  return 2;
}

/// Flags that take no value.
bool is_boolean_flag(const std::string& name) {
  return name == "no-cache" || name == "strict" || name == "best-effort" ||
         name == "resume";
}

/// Cooperative-interrupt plumbing: the signal handler only flips the
/// token's atomic flag (async-signal-safe); the sweep polls it at
/// checkpoint boundaries, flushes, and unwinds normally.
runtime::CancellationToken g_interrupt;
std::atomic<int> g_interrupt_signal{0};

extern "C" void handle_interrupt_signal(int sig) {
  g_interrupt_signal.store(sig, std::memory_order_relaxed);
  g_interrupt.request_cancel();
}

void install_interrupt_handlers() {
  std::signal(SIGINT, handle_interrupt_signal);
  std::signal(SIGTERM, handle_interrupt_signal);
}

std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (!util::starts_with(key, "--")) {
      throw std::runtime_error("expected --flag, got: " + key);
    }
    const std::string name = key.substr(2);
    if (is_boolean_flag(name)) {
      flags[name] = "1";
      continue;
    }
    if (i + 1 >= argc) {
      // A trailing flag with no value used to be dropped silently — the
      // worst possible failure mode for an analysis tool (you get a
      // default-parameter answer to a non-default question).
      throw std::runtime_error("flag " + key + " expects a value");
    }
    flags[name] = argv[++i];
  }
  return flags;
}

scada::ScadaTopology load_topology(
    const std::map<std::string, std::string>& flags) {
  const auto it = flags.find("topology");
  if (it == flags.end()) return scada::oahu_topology();
  std::ifstream in(it->second);
  if (!in) throw std::runtime_error("cannot open " + it->second);
  return scada::load_topology_csv(in, it->second);
}

struct AnalyzeSetup {
  core::CaseStudyRunner runner;
  std::vector<scada::Configuration> configs;
  /// --strict: degraded runs exit 3 instead of reporting partial results.
  bool strict = false;
  /// --checkpoint-dir / --checkpoint-interval / --resume.
  runtime::CheckpointOptions ckpt;
};

AnalyzeSetup make_setup(const std::map<std::string, std::string>& flags) {
  core::CaseStudyOptions options;
  options.realizations = 1000;
  if (const auto it = flags.find("realizations"); it != flags.end()) {
    options.realizations = std::strtoul(it->second.c_str(), nullptr, 10);
  }
  if (const auto it = flags.find("slr"); it != flags.end()) {
    options.realization.sea_level_offset_m =
        std::strtod(it->second.c_str(), nullptr);
  }
  // Runtime: parallel by default, with the cross-process disk cache so a
  // repeated analyze of identical inputs skips the whole sweep.
  options.runtime.disk_cache = true;
  if (const auto it = flags.find("jobs"); it != flags.end()) {
    options.runtime.jobs = static_cast<unsigned>(
        std::strtoul(it->second.c_str(), nullptr, 10));
  }
  if (flags.count("no-cache") != 0) {
    options.runtime.cache = false;
    options.runtime.disk_cache = false;
  }
  if (const auto it = flags.find("max-retries"); it != flags.end()) {
    options.runtime.max_retries = static_cast<unsigned>(
        std::strtoul(it->second.c_str(), nullptr, 10));
  }
  if (flags.count("strict") != 0 && flags.count("best-effort") != 0) {
    throw std::runtime_error("--strict and --best-effort are exclusive");
  }
  runtime::CheckpointOptions ckpt;
  if (const auto it = flags.find("checkpoint-dir"); it != flags.end()) {
    ckpt.dir = it->second;
  }
  if (const auto it = flags.find("checkpoint-interval"); it != flags.end()) {
    ckpt.interval = std::strtoul(it->second.c_str(), nullptr, 10);
    if (ckpt.interval == 0) {
      throw std::runtime_error("--checkpoint-interval must be >= 1");
    }
  }
  ckpt.resume = flags.count("resume") != 0;
  if (ckpt.resume && ckpt.dir.empty()) {
    throw std::runtime_error("--resume requires --checkpoint-dir");
  }
  scada::ScadaTopology topology = load_topology(flags);

  const auto pick = [&](const char* flag, const char* fallback) {
    const auto it = flags.find(flag);
    const std::string id = it != flags.end() ? it->second : fallback;
    if (!topology.contains(id)) {
      throw std::runtime_error(std::string("no asset with id '") + id +
                               "' in the topology");
    }
    return id;
  };
  const std::string primary = pick("primary", scada::oahu_ids::kHonoluluCc);
  const std::string backup = pick("backup", scada::oahu_ids::kWaiauCc);
  const std::string dc = pick("dc", scada::oahu_ids::kDrFortress);

  return {core::CaseStudyRunner(std::move(topology),
                                terrain::make_oahu_terrain(), options),
          scada::paper_configurations(primary, backup, dc),
          flags.count("strict") != 0, std::move(ckpt)};
}

int cmd_topology(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string sub = argv[2];
  const std::string path = argv[3];
  if (sub == "export") {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      return 1;
    }
    scada::save_topology_csv(out, scada::oahu_topology());
    std::cout << "wrote built-in Oahu topology to " << path << "\n";
    return 0;
  }
  if (sub == "validate") {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cannot open " << path << "\n";
      return 1;
    }
    const scada::ScadaTopology topo = scada::load_topology_csv(in, path);
    std::cout << path << ": " << topo.size() << " assets (";
    std::cout << topo.of_type(scada::AssetType::kControlCenter).size()
              << " control centers, "
              << topo.of_type(scada::AssetType::kDataCenter).size()
              << " data centers, "
              << topo.of_type(scada::AssetType::kPowerPlant).size()
              << " power plants, "
              << topo.of_type(scada::AssetType::kSubstation).size()
              << " substations)\n";
    return 0;
  }
  return usage();
}

int cmd_map(int argc, char** argv) {
  const auto terrain = terrain::make_oahu_terrain();
  const scada::ScadaTopology topo = scada::oahu_topology();
  if (argc > 2) {
    const auto index = std::strtoull(argv[2], nullptr, 10);
    const surge::RealizationEngine engine(terrain::make_oahu_terrain(),
                                          topo.exposed_assets(), {});
    const surge::HurricaneRealization r = engine.run(index);
    std::cout << core::render_region_map(*terrain, topo, &r);
  } else {
    std::cout << core::render_region_map(*terrain, topo);
  }
  return 0;
}

void print_cache_stats(core::CaseStudyRunner& runner) {
  const auto stats = runner.runtime().cache_stats();
  std::cout << "result cache: " << stats.hits << "/" << stats.lookups
            << " hits (" << util::format_fixed(stats.hit_rate() * 100.0, 1)
            << "%), " << stats.disk_hits << " from disk";
  if (stats.corrupt_discarded > 0) {
    std::cout << ", " << stats.corrupt_discarded
              << " corrupt record(s) discarded";
  }
  if (stats.write_failures > 0) {
    std::cout << ", " << stats.write_failures
              << " disk write failure(s) (memory-only fallback)";
  }
  std::cout << "\n";
}

/// Prints the quarantine summary of a degraded sweep (unique failures: the
/// same realization quarantines once per (config, scenario) evaluation)
/// and returns the process exit code under the setup's strictness.
int finish_analysis(const AnalyzeSetup& setup,
                    const std::vector<core::ScenarioResult>& all_results) {
  bool degraded = false;
  std::uint64_t retries = 0;
  for (const core::ScenarioResult& r : all_results) {
    degraded = degraded || r.degraded();
    retries += r.retries;
  }
  if (degraded) {
    std::cout << "=== degraded run: quarantined realizations ===\n";
    core::failure_summary_table(all_results).render(std::cout);
    std::cout << "(" << retries << " retry attempt(s) spent; partial "
              << "distributions above cover completed realizations only)\n\n";
  }
  const int code = core::analysis_exit_code(all_results, setup.strict);
  if (code == 3) {
    std::cerr << "ctctl: degraded run under --strict (exit 3)\n";
  } else if (code == 4) {
    std::cerr << "ctctl: no realization completed (exit 4)\n";
  }
  return code;
}

int cmd_analyze(int argc, char** argv) {
  AnalyzeSetup setup = make_setup(parse_flags(argc, argv, 2));
  install_interrupt_handlers();

  // One fused (scenarios x configs) sweep: every realization is generated
  // once and classified into each uncached cell, with completed slices
  // journaled under --checkpoint-dir (when given) so an interrupted or
  // killed run continues with --resume instead of restarting.
  const auto all = threat::all_scenarios();
  const std::vector<threat::ThreatScenario> scenarios(all.begin(), all.end());
  const core::ResumableAnalysis analysis = setup.runner.run_all_resumable(
      setup.configs, scenarios, setup.ckpt, &g_interrupt);

  if (!setup.ckpt.dir.empty()) {
    std::cout << "checkpoint: " << runtime::resume_status_name(
                     analysis.resume.status)
              << ", restored " << analysis.restored << " and computed "
              << analysis.executed << " realization(s), "
              << analysis.checkpoints << " checkpoint write(s)\n\n";
  }

  std::vector<core::ScenarioResult> all_results;
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    // run_all_resumable returns row-major cells: configs within scenario.
    const auto begin = analysis.results.begin() +
                       static_cast<std::ptrdiff_t>(s * setup.configs.size());
    std::vector<core::ScenarioResult> results(
        begin, begin + static_cast<std::ptrdiff_t>(setup.configs.size()));
    std::cout << "=== " << threat::scenario_name(scenarios[s]) << " ===";
    if (analysis.interrupted) std::cout << " (partial)";
    std::cout << "\n";
    core::profile_table(results).render(std::cout);
    std::cout << "\n";
    for (core::ScenarioResult& r : results) {
      all_results.push_back(std::move(r));
    }
  }
  print_cache_stats(setup.runner);

  if (analysis.interrupted) {
    const int sig = g_interrupt_signal.load(std::memory_order_relaxed);
    std::cerr << "ctctl: interrupted"
              << (sig == SIGTERM ? " (SIGTERM)"
                                 : sig == SIGINT ? " (SIGINT)" : "")
              << " after " << analysis.executed << " realization(s); ";
    if (!setup.ckpt.dir.empty()) {
      std::cerr << "progress saved under " << setup.ckpt.dir
                << " — rerun with --resume to continue";
    } else {
      std::cerr << "no --checkpoint-dir, so progress was NOT saved";
    }
    std::cerr << " (exit 5)\n";
    // Still surface any quarantine ledger before exiting.
    finish_analysis(setup, all_results);
    return core::sweep_exit_code(analysis, setup.strict);
  }
  return finish_analysis(setup, all_results);
}

int cmd_downtime(int argc, char** argv) {
  AnalyzeSetup setup = make_setup(parse_flags(argc, argv, 2));
  const core::RestorationModel model;
  for (const threat::ThreatScenario scenario : threat::all_scenarios()) {
    util::TextTable table;
    table.set_columns({"config", "E[downtime] h", "E[incorrect] h"},
                      {util::Align::kLeft, util::Align::kRight,
                       util::Align::kRight});
    for (const auto& config : setup.configs) {
      const core::RestorationResult r = core::analyze_restoration(
          config, scenario, setup.runner.realizations(), model,
          setup.runner.runtime(), 0);
      table.add_row({config.name,
                     util::format_fixed(r.expected_downtime_hours, 2),
                     util::format_fixed(r.expected_incorrect_hours, 2)});
    }
    std::cout << "=== " << threat::scenario_name(scenario) << " ===\n";
    table.render(std::cout);
    std::cout << "\n";
  }
  // Restoration consumes the raw batch, so quarantine accounting lives in
  // the generation ledger rather than per-scenario results; surface it
  // through the same summary/exit-code path as analyze.
  core::ScenarioResult generation;
  generation.config_name = "(generation)";
  generation.failures = setup.runner.generation_failures().failures;
  generation.retries = setup.runner.generation_failures().retries;
  generation.attempted = setup.runner.options().realizations;
  generation.completed = generation.attempted - generation.failures.size();
  return finish_analysis(setup, {generation});
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "topology") return cmd_topology(argc, argv);
    if (command == "map") return cmd_map(argc, argv);
    if (command == "analyze") return cmd_analyze(argc, argv);
    if (command == "downtime") return cmd_downtime(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "ctctl: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
