// ctctl — command-line front end to the compound-threat framework. The
// adoption path for practitioners: export the built-in Oahu topology,
// edit the CSV (or export one from a GIS), and analyze custom sitings
// without writing C++ — locally, or against a running ctserved instance
// (--connect), whose answers are byte-identical to local execution.
//
// Subcommands and flags are listed by `ctctl` with no arguments (see
// usage() below). Analysis commands (analyze, downtime, siting) share one
// body: flags build a service::Request, which either executes in-process
// or ships to a server; both paths render through service::execute_request
// so the report bytes cannot diverge.
//
// Exit codes: 0 success (incl. best-effort degraded), 1 runtime error,
// 2 usage, 3 degraded under --strict, 4 no realization completed,
// 5 interrupted but resumable (or remote deadline exceeded), 6 server
// overloaded or shutting down (retry later).
#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/case_study.h"
#include "core/map.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scada/oahu.h"
#include "scada/topology_io.h"
#include "service/client.h"
#include "service/exec.h"
#include "terrain/oahu.h"
#include "util/strings.h"

using namespace ct;

namespace {

/// A command-line mistake: reported with the usage text, exit 2 (distinct
/// from runtime failures, which exit 1).
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

int usage() {
  std::cerr <<
      "usage: ctctl <command> [options]\n"
      "\n"
      "commands:\n"
      "  topology export <file.csv>    write the built-in Oahu topology\n"
      "  topology validate <file.csv>  parse + summarize a topology CSV\n"
      "  map [realization]             ASCII region map (optionally with one\n"
      "                                realization's floods)\n"
      "  analyze [options]             operational profiles, 4 scenarios\n"
      "  downtime [options]            restoration costs in hours\n"
      "  siting [options]              backup-site ranking per scenario\n"
      "  stats --connect <addr>        server/runtime counters\n"
      "  stats --metrics               metrics-registry snapshot (local, or\n"
      "                                the server's with --connect)\n"
      "\n"
      "analysis options (analyze, downtime, siting):\n"
      "  --topology <file.csv>      topology to analyze (default: built-in\n"
      "                             Oahu)\n"
      "  --primary <asset id>       primary control center (default:\n"
      "                             honolulu_cc)\n"
      "  --backup <asset id>        backup control center (default: waiau_cc;\n"
      "                             analyze/downtime only)\n"
      "  --dc <asset id>            data center (default: drfortress_dc;\n"
      "                             analyze/downtime only)\n"
      "  --realizations <n>         hurricane realizations (default: 1000)\n"
      "  --slr <meters>             sea-level-rise offset\n"
      "  --jobs <n>                 worker threads (0 = all cores, 1 =\n"
      "                             serial; default 0; local only)\n"
      "  --no-cache                 recompute everything: disable the result\n"
      "                             cache (default: on-disk cache under\n"
      "                             CT_CACHE_DIR or ~/.cache/ct)\n"
      "  --max-retries <n>          re-runs of a failed realization (same\n"
      "                             seed) before it is quarantined\n"
      "                             (default 2)\n"
      "  --best-effort              degraded runs (quarantined realizations)\n"
      "                             report partial results and exit 0\n"
      "                             (default)\n"
      "  --strict                   degraded runs exit 3 after printing the\n"
      "                             failure summary\n"
      "  --connect <addr>           run on a ctserved instance instead of\n"
      "                             in-process; <addr> is unix:<path> or\n"
      "                             [tcp:]<host>:<port>\n"
      "  --deadline-ms <n>          give up after n milliseconds (remote:\n"
      "                             enforced server-side at sweep slice\n"
      "                             boundaries)\n"
      "  --trace-out <file.json>    enable span tracing and write a Chrome-\n"
      "                             trace JSON after the run (local only;\n"
      "                             load in chrome://tracing or Perfetto)\n"
      "\n"
      "checkpoint options (analyze, local only):\n"
      "  --checkpoint-dir <dir>     journal completed work under <dir> so a\n"
      "                             killed or interrupted analyze can\n"
      "                             continue instead of restarting\n"
      "  --checkpoint-interval <n>  realizations per checkpoint record\n"
      "                             (default 128): the most work a crash can\n"
      "                             lose\n"
      "  --resume                   continue from the checkpoint state under\n"
      "                             --checkpoint-dir; stale or corrupt state\n"
      "                             falls back to a cold start, loudly\n"
      "\n"
      "stats options:\n"
      "  --connect <addr>           the server to query (required unless\n"
      "                             --metrics renders the local registry)\n"
      "  --metrics                  full metrics-registry snapshot instead\n"
      "                             of the server counter table\n"
      "  --json                     machine-readable output\n"
      "\n"
      "exit codes: 0 success, 1 runtime error, 2 usage, 3 degraded under\n"
      "--strict, 4 no realization completed, 5 interrupted/deadline (rerun\n"
      "with --resume where applicable), 6 server overloaded or draining\n";
  return 2;
}

/// Flags that take no value.
bool is_boolean_flag(const std::string& name) {
  return name == "no-cache" || name == "strict" || name == "best-effort" ||
         name == "resume" || name == "json" || name == "metrics";
}

/// Cooperative-interrupt plumbing: the signal handler only flips the
/// token's atomic flag (async-signal-safe); the sweep polls it at
/// checkpoint boundaries, flushes, and unwinds normally. The pointer is
/// retargeted (before handlers are installed) at a deadline-bearing token
/// when --deadline-ms is given.
runtime::CancellationToken g_default_interrupt;
runtime::CancellationToken* g_interrupt = &g_default_interrupt;
std::atomic<int> g_interrupt_signal{0};

extern "C" void handle_interrupt_signal(int sig) {
  g_interrupt_signal.store(sig, std::memory_order_relaxed);
  g_interrupt->request_cancel();
}

void install_interrupt_handlers() {
  std::signal(SIGINT, handle_interrupt_signal);
  std::signal(SIGTERM, handle_interrupt_signal);
}

// Per-subcommand flag vocabularies. An unknown flag is a hard usage error
// with a "did you mean" hint — silently ignoring a typo like `--job 8`
// means answering a non-default question with default parameters, the
// worst failure mode an analysis tool can have.
const std::vector<std::string> kAnalysisFlags = {
    "topology",    "primary",     "backup",      "dc",
    "realizations", "slr",        "jobs",        "no-cache",
    "max-retries", "best-effort", "strict",      "connect",
    "deadline-ms", "trace-out"};

std::vector<std::string> flags_for(const std::string& command) {
  if (command == "analyze") {
    std::vector<std::string> flags = kAnalysisFlags;
    flags.insert(flags.end(),
                 {"checkpoint-dir", "checkpoint-interval", "resume"});
    return flags;
  }
  if (command == "downtime") return kAnalysisFlags;
  if (command == "siting") {
    std::vector<std::string> flags;
    for (const std::string& f : kAnalysisFlags) {
      if (f != "backup" && f != "dc") flags.push_back(f);
    }
    return flags;
  }
  if (command == "stats") return {"connect", "json", "metrics"};
  return {};
}

std::map<std::string, std::string> parse_flags(
    int argc, char** argv, int first, const std::vector<std::string>& allowed) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (!util::starts_with(key, "--")) {
      throw UsageError("expected --flag, got: " + key);
    }
    const std::string name = key.substr(2);
    if (std::find(allowed.begin(), allowed.end(), name) == allowed.end()) {
      std::string message = "unknown flag " + key + " for this command";
      const std::string hint = util::closest_match(name, allowed);
      if (!hint.empty()) message += " (did you mean --" + hint + "?)";
      throw UsageError(message);
    }
    if (is_boolean_flag(name)) {
      flags[name] = "1";
      continue;
    }
    if (i + 1 >= argc) {
      // A trailing flag with no value used to be dropped silently — the
      // worst possible failure mode for an analysis tool (you get a
      // default-parameter answer to a non-default question).
      throw UsageError("flag " + key + " expects a value");
    }
    flags[name] = argv[++i];
  }
  return flags;
}

/// Builds the wire request a flag set describes (shared by the local and
/// --connect paths, so a flag can never mean two different things).
service::Request build_request(service::RequestKind kind,
                               const std::map<std::string, std::string>& flags) {
  service::Request request;
  request.kind = kind;
  if (const auto it = flags.find("realizations"); it != flags.end()) {
    request.realizations = std::strtoul(it->second.c_str(), nullptr, 10);
  }
  if (const auto it = flags.find("slr"); it != flags.end()) {
    request.sea_level_offset_m = std::strtod(it->second.c_str(), nullptr);
  }
  if (const auto it = flags.find("max-retries"); it != flags.end()) {
    request.max_retries = static_cast<std::uint32_t>(
        std::strtoul(it->second.c_str(), nullptr, 10));
  }
  if (const auto it = flags.find("deadline-ms"); it != flags.end()) {
    request.deadline_ms = static_cast<std::uint32_t>(
        std::strtoul(it->second.c_str(), nullptr, 10));
  }
  request.no_cache = flags.count("no-cache") != 0;
  if (flags.count("strict") != 0 && flags.count("best-effort") != 0) {
    throw UsageError("--strict and --best-effort are exclusive");
  }
  request.strict = flags.count("strict") != 0;
  request.json = flags.count("json") != 0;
  if (const auto it = flags.find("primary"); it != flags.end()) {
    request.primary = it->second;
  }
  if (const auto it = flags.find("backup"); it != flags.end()) {
    request.backup = it->second;
  }
  if (const auto it = flags.find("dc"); it != flags.end()) {
    request.dc = it->second;
  }
  if (const auto it = flags.find("topology"); it != flags.end()) {
    // The file is client-local; the CSV travels by value either way so the
    // local and remote paths parse identical bytes.
    std::ifstream in(it->second);
    if (!in) throw std::runtime_error("cannot open " + it->second);
    std::ostringstream content;
    content << in.rdbuf();
    request.topology_csv = content.str();
  }
  return request;
}

runtime::CheckpointOptions build_checkpoint(
    const std::map<std::string, std::string>& flags) {
  runtime::CheckpointOptions ckpt;
  if (const auto it = flags.find("checkpoint-dir"); it != flags.end()) {
    ckpt.dir = it->second;
  }
  if (const auto it = flags.find("checkpoint-interval"); it != flags.end()) {
    ckpt.interval = std::strtoul(it->second.c_str(), nullptr, 10);
    if (ckpt.interval == 0) {
      throw UsageError("--checkpoint-interval must be >= 1");
    }
  }
  ckpt.resume = flags.count("resume") != 0;
  if (ckpt.resume && ckpt.dir.empty()) {
    throw UsageError("--resume requires --checkpoint-dir");
  }
  return ckpt;
}

/// Exit-code-driven stderr notes shared by the local and remote paths
/// (the report itself is already on stdout).
void explain_exit_code(int code) {
  if (code == 3) {
    std::cerr << "ctctl: degraded run under --strict (exit 3)\n";
  } else if (code == 4) {
    std::cerr << "ctctl: no realization completed (exit 4)\n";
  }
}

int run_local(service::RequestKind kind,
              const std::map<std::string, std::string>& flags) {
  const service::Request request = build_request(kind, flags);
  runtime::CheckpointOptions ckpt = build_checkpoint(flags);
  const auto trace_out = flags.find("trace-out");
  if (trace_out != flags.end()) obs::set_trace_enabled(true);
  core::CaseStudyOptions defaults;
  // Parallel by default, with the cross-process disk cache so a repeated
  // run of identical inputs skips the whole sweep.
  defaults.runtime.disk_cache = true;
  if (const auto it = flags.find("jobs"); it != flags.end()) {
    defaults.runtime.jobs = static_cast<unsigned>(
        std::strtoul(it->second.c_str(), nullptr, 10));
  }
  std::optional<runtime::CancellationToken> deadline_token;
  if (request.deadline_ms != 0) {
    deadline_token.emplace(std::chrono::milliseconds(request.deadline_ms));
    g_interrupt = &*deadline_token;
  }
  install_interrupt_handlers();

  const std::unique_ptr<core::CaseStudyRunner> runner =
      service::make_case_study(request, defaults, nullptr);
  const service::ExecOutcome outcome =
      service::execute_request(request, *runner, ckpt, g_interrupt);

  std::cout << outcome.output;
  if (kind == service::RequestKind::kAnalyze) {
    std::cerr << outcome.cache_line << "\n";
  }
  if (trace_out != flags.end()) {
    // Diagnostics on stderr: stdout stays byte-identical to an untraced run.
    std::ofstream trace_file(trace_out->second);
    if (!trace_file) {
      std::cerr << "ctctl: cannot write trace to " << trace_out->second
                << "\n";
    } else {
      obs::write_chrome_trace(trace_file, obs::collect_trace());
      std::cerr << "ctctl: trace written to " << trace_out->second << "\n";
    }
  }

  if (outcome.interrupted) {
    const int sig = g_interrupt_signal.load(std::memory_order_relaxed);
    std::cerr << "ctctl: interrupted"
              << (sig == SIGTERM ? " (SIGTERM)"
                                 : sig == SIGINT ? " (SIGINT)" : "")
              << "; ";
    if (!ckpt.dir.empty()) {
      std::cerr << "progress saved under " << ckpt.dir
                << " — rerun with --resume to continue";
    } else {
      std::cerr << "no --checkpoint-dir, so progress was NOT saved";
    }
    std::cerr << " (exit 5)\n";
    return outcome.exit_code;
  }
  explain_exit_code(outcome.exit_code);
  return outcome.exit_code;
}

int run_remote(service::RequestKind kind,
               const std::map<std::string, std::string>& flags,
               const std::string& address) {
  // Server-side execution knobs cannot be set per-request: the pool and
  // the checkpoint journal belong to the server (results are
  // jobs-independent by the determinism contract, so --jobs could only
  // ever be a no-op anyway).
  for (const char* local_only :
       {"jobs", "checkpoint-dir", "checkpoint-interval", "resume",
        "trace-out"}) {
    if (flags.count(local_only) != 0) {
      throw UsageError(std::string("--") + local_only +
                       " is local-only and cannot be combined with --connect");
    }
  }
  const service::Request request = build_request(kind, flags);
  service::Client client(address);
  client.connect();
  const service::CallResult result = client.call(request);
  if (result.ok) {
    std::cout << result.response.output;
    // Diagnostics stay on stderr so stdout remains byte-identical to a
    // local run (the CI smoke greps this line for the cache-warm check).
    if (result.response.all_from_cache) {
      std::cerr << "ctctl: served entirely from the server's result cache\n";
    }
    explain_exit_code(result.response.exit_code);
    return result.response.exit_code;
  }
  std::cerr << "ctctl: server error ("
            << service::status_name(result.error.status)
            << "): " << result.error.message << "\n";
  switch (result.error.status) {
    case service::Status::kOverloaded:
      std::cerr << "ctctl: queue depth " << result.error.queue_depth
                << ", retry after " << result.error.retry_after_ms
                << " ms (exit 6)\n";
      return 6;
    case service::Status::kShuttingDown:
      return 6;
    case service::Status::kDeadlineExceeded:
      return 5;
    case service::Status::kMalformedRequest:
    case service::Status::kUnsupportedVersion:
    case service::Status::kExecutionFailed:
      break;
  }
  return 1;
}

int cmd_analysis(const std::string& command, service::RequestKind kind,
                 int argc, char** argv) {
  const auto flags = parse_flags(argc, argv, 2, flags_for(command));
  if (const auto it = flags.find("connect"); it != flags.end()) {
    return run_remote(kind, flags, it->second);
  }
  return run_local(kind, flags);
}

int cmd_stats(int argc, char** argv) {
  const auto flags = parse_flags(argc, argv, 2, flags_for("stats"));
  const bool metrics = flags.count("metrics") != 0;
  const auto it = flags.find("connect");
  if (it != flags.end()) {
    return run_remote(metrics ? service::RequestKind::kMetrics
                              : service::RequestKind::kStats,
                      flags, it->second);
  }
  if (!metrics) {
    throw UsageError("stats requires --connect <addr> (the counters live on "
                     "the server); add --metrics to render this process's "
                     "registry locally");
  }
  // Local registry snapshot via the SAME formatter the server's kMetrics
  // reply uses, so local and remote metrics output cannot diverge.
  std::cout << obs::format_metrics(obs::capture_metrics(),
                                   flags.count("json") != 0);
  return 0;
}

int cmd_topology(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string sub = argv[2];
  const std::string path = argv[3];
  if (sub == "export") {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      return 1;
    }
    scada::save_topology_csv(out, scada::oahu_topology());
    std::cout << "wrote built-in Oahu topology to " << path << "\n";
    return 0;
  }
  if (sub == "validate") {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cannot open " << path << "\n";
      return 1;
    }
    const scada::ScadaTopology topo = scada::load_topology_csv(in, path);
    std::cout << path << ": " << topo.size() << " assets (";
    std::cout << topo.of_type(scada::AssetType::kControlCenter).size()
              << " control centers, "
              << topo.of_type(scada::AssetType::kDataCenter).size()
              << " data centers, "
              << topo.of_type(scada::AssetType::kPowerPlant).size()
              << " power plants, "
              << topo.of_type(scada::AssetType::kSubstation).size()
              << " substations)\n";
    return 0;
  }
  return usage();
}

int cmd_map(int argc, char** argv) {
  const auto terrain = terrain::make_oahu_terrain();
  const scada::ScadaTopology topo = scada::oahu_topology();
  if (argc > 2) {
    const auto index = std::strtoull(argv[2], nullptr, 10);
    const surge::RealizationEngine engine(terrain::make_oahu_terrain(),
                                          topo.exposed_assets(), {});
    const surge::HurricaneRealization r = engine.run(index);
    std::cout << core::render_region_map(*terrain, topo, &r);
  } else {
    std::cout << core::render_region_map(*terrain, topo);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "topology") return cmd_topology(argc, argv);
    if (command == "map") return cmd_map(argc, argv);
    if (command == "analyze") {
      return cmd_analysis(command, service::RequestKind::kAnalyze, argc, argv);
    }
    if (command == "downtime") {
      return cmd_analysis(command, service::RequestKind::kDowntime, argc, argv);
    }
    if (command == "siting") {
      return cmd_analysis(command, service::RequestKind::kSiting, argc, argv);
    }
    if (command == "stats") return cmd_stats(argc, argv);
  } catch (const UsageError& e) {
    std::cerr << "ctctl: " << e.what() << "\n";
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "ctctl: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
