# Empty compiler generated dependencies file for des_replay.
# This may be replaced when dependencies are built.
