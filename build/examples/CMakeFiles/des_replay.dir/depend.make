# Empty dependencies file for des_replay.
# This may be replaced when dependencies are built.
