file(REMOVE_RECURSE
  "CMakeFiles/des_replay.dir/des_replay.cpp.o"
  "CMakeFiles/des_replay.dir/des_replay.cpp.o.d"
  "des_replay"
  "des_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/des_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
