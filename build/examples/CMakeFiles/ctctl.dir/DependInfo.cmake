
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/ctctl.cpp" "examples/CMakeFiles/ctctl.dir/ctctl.cpp.o" "gcc" "examples/CMakeFiles/ctctl.dir/ctctl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ct_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/threat/CMakeFiles/ct_threat.dir/DependInfo.cmake"
  "/root/repo/build/src/scada/CMakeFiles/ct_scada.dir/DependInfo.cmake"
  "/root/repo/build/src/surge/CMakeFiles/ct_surge.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/ct_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/storm/CMakeFiles/ct_storm.dir/DependInfo.cmake"
  "/root/repo/build/src/terrain/CMakeFiles/ct_terrain.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/ct_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
