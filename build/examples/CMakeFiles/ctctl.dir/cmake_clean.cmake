file(REMOVE_RECURSE
  "CMakeFiles/ctctl.dir/ctctl.cpp.o"
  "CMakeFiles/ctctl.dir/ctctl.cpp.o.d"
  "ctctl"
  "ctctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
