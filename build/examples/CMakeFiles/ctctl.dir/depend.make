# Empty dependencies file for ctctl.
# This may be replaced when dependencies are built.
