# Empty compiler generated dependencies file for oahu_case_study.
# This may be replaced when dependencies are built.
