file(REMOVE_RECURSE
  "CMakeFiles/oahu_case_study.dir/oahu_case_study.cpp.o"
  "CMakeFiles/oahu_case_study.dir/oahu_case_study.cpp.o.d"
  "oahu_case_study"
  "oahu_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oahu_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
