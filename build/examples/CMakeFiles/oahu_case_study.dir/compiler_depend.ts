# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for oahu_case_study.
