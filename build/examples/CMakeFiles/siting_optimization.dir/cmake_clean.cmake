file(REMOVE_RECURSE
  "CMakeFiles/siting_optimization.dir/siting_optimization.cpp.o"
  "CMakeFiles/siting_optimization.dir/siting_optimization.cpp.o.d"
  "siting_optimization"
  "siting_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siting_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
