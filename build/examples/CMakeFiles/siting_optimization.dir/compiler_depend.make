# Empty compiler generated dependencies file for siting_optimization.
# This may be replaced when dependencies are built.
