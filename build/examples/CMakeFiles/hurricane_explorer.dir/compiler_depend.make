# Empty compiler generated dependencies file for hurricane_explorer.
# This may be replaced when dependencies are built.
