file(REMOVE_RECURSE
  "CMakeFiles/hurricane_explorer.dir/hurricane_explorer.cpp.o"
  "CMakeFiles/hurricane_explorer.dir/hurricane_explorer.cpp.o.d"
  "hurricane_explorer"
  "hurricane_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hurricane_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
