# Empty dependencies file for bench_slr.
# This may be replaced when dependencies are built.
