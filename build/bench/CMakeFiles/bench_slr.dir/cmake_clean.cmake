file(REMOVE_RECURSE
  "CMakeFiles/bench_slr.dir/bench_slr.cpp.o"
  "CMakeFiles/bench_slr.dir/bench_slr.cpp.o.d"
  "bench_slr"
  "bench_slr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_slr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
