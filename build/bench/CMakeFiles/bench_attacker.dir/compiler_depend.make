# Empty compiler generated dependencies file for bench_attacker.
# This may be replaced when dependencies are built.
