file(REMOVE_RECURSE
  "CMakeFiles/bench_attacker.dir/bench_attacker.cpp.o"
  "CMakeFiles/bench_attacker.dir/bench_attacker.cpp.o.d"
  "bench_attacker"
  "bench_attacker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attacker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
