file(REMOVE_RECURSE
  "CMakeFiles/bench_des.dir/bench_des.cpp.o"
  "CMakeFiles/bench_des.dir/bench_des.cpp.o.d"
  "bench_des"
  "bench_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
