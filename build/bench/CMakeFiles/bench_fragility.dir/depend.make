# Empty dependencies file for bench_fragility.
# This may be replaced when dependencies are built.
