file(REMOVE_RECURSE
  "CMakeFiles/bench_fragility.dir/bench_fragility.cpp.o"
  "CMakeFiles/bench_fragility.dir/bench_fragility.cpp.o.d"
  "bench_fragility"
  "bench_fragility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fragility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
