file(REMOVE_RECURSE
  "libct_bench_common.a"
)
