file(REMOVE_RECURSE
  "CMakeFiles/ct_bench_common.dir/figure_bench.cpp.o"
  "CMakeFiles/ct_bench_common.dir/figure_bench.cpp.o.d"
  "libct_bench_common.a"
  "libct_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
