# Empty dependencies file for ct_bench_common.
# This may be replaced when dependencies are built.
