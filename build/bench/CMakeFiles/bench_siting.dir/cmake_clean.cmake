file(REMOVE_RECURSE
  "CMakeFiles/bench_siting.dir/bench_siting.cpp.o"
  "CMakeFiles/bench_siting.dir/bench_siting.cpp.o.d"
  "bench_siting"
  "bench_siting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_siting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
