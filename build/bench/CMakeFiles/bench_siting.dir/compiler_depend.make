# Empty compiler generated dependencies file for bench_siting.
# This may be replaced when dependencies are built.
