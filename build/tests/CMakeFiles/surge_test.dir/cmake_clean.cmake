file(REMOVE_RECURSE
  "CMakeFiles/surge_test.dir/surge_test.cpp.o"
  "CMakeFiles/surge_test.dir/surge_test.cpp.o.d"
  "surge_test"
  "surge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
