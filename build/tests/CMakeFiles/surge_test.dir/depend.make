# Empty dependencies file for surge_test.
# This may be replaced when dependencies are built.
