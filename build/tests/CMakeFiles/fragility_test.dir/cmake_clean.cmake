file(REMOVE_RECURSE
  "CMakeFiles/fragility_test.dir/fragility_test.cpp.o"
  "CMakeFiles/fragility_test.dir/fragility_test.cpp.o.d"
  "fragility_test"
  "fragility_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fragility_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
