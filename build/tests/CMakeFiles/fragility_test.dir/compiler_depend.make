# Empty compiler generated dependencies file for fragility_test.
# This may be replaced when dependencies are built.
