# Empty compiler generated dependencies file for scada_des_test.
# This may be replaced when dependencies are built.
