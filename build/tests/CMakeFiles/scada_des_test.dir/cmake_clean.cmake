file(REMOVE_RECURSE
  "CMakeFiles/scada_des_test.dir/scada_des_test.cpp.o"
  "CMakeFiles/scada_des_test.dir/scada_des_test.cpp.o.d"
  "scada_des_test"
  "scada_des_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scada_des_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
