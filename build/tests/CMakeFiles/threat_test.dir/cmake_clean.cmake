file(REMOVE_RECURSE
  "CMakeFiles/threat_test.dir/threat_test.cpp.o"
  "CMakeFiles/threat_test.dir/threat_test.cpp.o.d"
  "threat_test"
  "threat_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
