file(REMOVE_RECURSE
  "CMakeFiles/paradox_test.dir/paradox_test.cpp.o"
  "CMakeFiles/paradox_test.dir/paradox_test.cpp.o.d"
  "paradox_test"
  "paradox_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradox_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
