# Empty dependencies file for paradox_test.
# This may be replaced when dependencies are built.
