file(REMOVE_RECURSE
  "CMakeFiles/restoration_test.dir/restoration_test.cpp.o"
  "CMakeFiles/restoration_test.dir/restoration_test.cpp.o.d"
  "restoration_test"
  "restoration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restoration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
