# Empty compiler generated dependencies file for impairment_test.
# This may be replaced when dependencies are built.
