file(REMOVE_RECURSE
  "CMakeFiles/impairment_test.dir/impairment_test.cpp.o"
  "CMakeFiles/impairment_test.dir/impairment_test.cpp.o.d"
  "impairment_test"
  "impairment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impairment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
