file(REMOVE_RECURSE
  "CMakeFiles/scada_test.dir/scada_test.cpp.o"
  "CMakeFiles/scada_test.dir/scada_test.cpp.o.d"
  "scada_test"
  "scada_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scada_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
