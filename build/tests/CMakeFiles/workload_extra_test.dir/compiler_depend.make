# Empty compiler generated dependencies file for workload_extra_test.
# This may be replaced when dependencies are built.
