file(REMOVE_RECURSE
  "CMakeFiles/workload_extra_test.dir/workload_extra_test.cpp.o"
  "CMakeFiles/workload_extra_test.dir/workload_extra_test.cpp.o.d"
  "workload_extra_test"
  "workload_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
