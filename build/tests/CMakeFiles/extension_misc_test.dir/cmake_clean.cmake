file(REMOVE_RECURSE
  "CMakeFiles/extension_misc_test.dir/extension_misc_test.cpp.o"
  "CMakeFiles/extension_misc_test.dir/extension_misc_test.cpp.o.d"
  "extension_misc_test"
  "extension_misc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
