# Empty dependencies file for extension_misc_test.
# This may be replaced when dependencies are built.
