file(REMOVE_RECURSE
  "CMakeFiles/io_map_test.dir/io_map_test.cpp.o"
  "CMakeFiles/io_map_test.dir/io_map_test.cpp.o.d"
  "io_map_test"
  "io_map_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
