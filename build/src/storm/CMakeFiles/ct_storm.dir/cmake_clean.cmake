file(REMOVE_RECURSE
  "CMakeFiles/ct_storm.dir/generator.cpp.o"
  "CMakeFiles/ct_storm.dir/generator.cpp.o.d"
  "CMakeFiles/ct_storm.dir/holland.cpp.o"
  "CMakeFiles/ct_storm.dir/holland.cpp.o.d"
  "CMakeFiles/ct_storm.dir/saffir_simpson.cpp.o"
  "CMakeFiles/ct_storm.dir/saffir_simpson.cpp.o.d"
  "CMakeFiles/ct_storm.dir/track.cpp.o"
  "CMakeFiles/ct_storm.dir/track.cpp.o.d"
  "libct_storm.a"
  "libct_storm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_storm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
