
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storm/generator.cpp" "src/storm/CMakeFiles/ct_storm.dir/generator.cpp.o" "gcc" "src/storm/CMakeFiles/ct_storm.dir/generator.cpp.o.d"
  "/root/repo/src/storm/holland.cpp" "src/storm/CMakeFiles/ct_storm.dir/holland.cpp.o" "gcc" "src/storm/CMakeFiles/ct_storm.dir/holland.cpp.o.d"
  "/root/repo/src/storm/saffir_simpson.cpp" "src/storm/CMakeFiles/ct_storm.dir/saffir_simpson.cpp.o" "gcc" "src/storm/CMakeFiles/ct_storm.dir/saffir_simpson.cpp.o.d"
  "/root/repo/src/storm/track.cpp" "src/storm/CMakeFiles/ct_storm.dir/track.cpp.o" "gcc" "src/storm/CMakeFiles/ct_storm.dir/track.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/ct_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
