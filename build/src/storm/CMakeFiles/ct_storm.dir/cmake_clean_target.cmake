file(REMOVE_RECURSE
  "libct_storm.a"
)
