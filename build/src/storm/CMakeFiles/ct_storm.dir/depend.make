# Empty dependencies file for ct_storm.
# This may be replaced when dependencies are built.
