# Empty dependencies file for ct_surge.
# This may be replaced when dependencies are built.
