
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/surge/fragility.cpp" "src/surge/CMakeFiles/ct_surge.dir/fragility.cpp.o" "gcc" "src/surge/CMakeFiles/ct_surge.dir/fragility.cpp.o.d"
  "/root/repo/src/surge/harbor.cpp" "src/surge/CMakeFiles/ct_surge.dir/harbor.cpp.o" "gcc" "src/surge/CMakeFiles/ct_surge.dir/harbor.cpp.o.d"
  "/root/repo/src/surge/inundation.cpp" "src/surge/CMakeFiles/ct_surge.dir/inundation.cpp.o" "gcc" "src/surge/CMakeFiles/ct_surge.dir/inundation.cpp.o.d"
  "/root/repo/src/surge/realization.cpp" "src/surge/CMakeFiles/ct_surge.dir/realization.cpp.o" "gcc" "src/surge/CMakeFiles/ct_surge.dir/realization.cpp.o.d"
  "/root/repo/src/surge/surge_model.cpp" "src/surge/CMakeFiles/ct_surge.dir/surge_model.cpp.o" "gcc" "src/surge/CMakeFiles/ct_surge.dir/surge_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mesh/CMakeFiles/ct_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/storm/CMakeFiles/ct_storm.dir/DependInfo.cmake"
  "/root/repo/build/src/terrain/CMakeFiles/ct_terrain.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/ct_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
