file(REMOVE_RECURSE
  "libct_surge.a"
)
