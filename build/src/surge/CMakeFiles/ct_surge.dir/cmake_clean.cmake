file(REMOVE_RECURSE
  "CMakeFiles/ct_surge.dir/fragility.cpp.o"
  "CMakeFiles/ct_surge.dir/fragility.cpp.o.d"
  "CMakeFiles/ct_surge.dir/harbor.cpp.o"
  "CMakeFiles/ct_surge.dir/harbor.cpp.o.d"
  "CMakeFiles/ct_surge.dir/inundation.cpp.o"
  "CMakeFiles/ct_surge.dir/inundation.cpp.o.d"
  "CMakeFiles/ct_surge.dir/realization.cpp.o"
  "CMakeFiles/ct_surge.dir/realization.cpp.o.d"
  "CMakeFiles/ct_surge.dir/surge_model.cpp.o"
  "CMakeFiles/ct_surge.dir/surge_model.cpp.o.d"
  "libct_surge.a"
  "libct_surge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_surge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
