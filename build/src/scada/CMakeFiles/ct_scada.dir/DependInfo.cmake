
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scada/architect.cpp" "src/scada/CMakeFiles/ct_scada.dir/architect.cpp.o" "gcc" "src/scada/CMakeFiles/ct_scada.dir/architect.cpp.o.d"
  "/root/repo/src/scada/asset.cpp" "src/scada/CMakeFiles/ct_scada.dir/asset.cpp.o" "gcc" "src/scada/CMakeFiles/ct_scada.dir/asset.cpp.o.d"
  "/root/repo/src/scada/configuration.cpp" "src/scada/CMakeFiles/ct_scada.dir/configuration.cpp.o" "gcc" "src/scada/CMakeFiles/ct_scada.dir/configuration.cpp.o.d"
  "/root/repo/src/scada/oahu.cpp" "src/scada/CMakeFiles/ct_scada.dir/oahu.cpp.o" "gcc" "src/scada/CMakeFiles/ct_scada.dir/oahu.cpp.o.d"
  "/root/repo/src/scada/requirements.cpp" "src/scada/CMakeFiles/ct_scada.dir/requirements.cpp.o" "gcc" "src/scada/CMakeFiles/ct_scada.dir/requirements.cpp.o.d"
  "/root/repo/src/scada/topology_io.cpp" "src/scada/CMakeFiles/ct_scada.dir/topology_io.cpp.o" "gcc" "src/scada/CMakeFiles/ct_scada.dir/topology_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/ct_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/surge/CMakeFiles/ct_surge.dir/DependInfo.cmake"
  "/root/repo/build/src/terrain/CMakeFiles/ct_terrain.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ct_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/ct_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/storm/CMakeFiles/ct_storm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
