file(REMOVE_RECURSE
  "CMakeFiles/ct_scada.dir/architect.cpp.o"
  "CMakeFiles/ct_scada.dir/architect.cpp.o.d"
  "CMakeFiles/ct_scada.dir/asset.cpp.o"
  "CMakeFiles/ct_scada.dir/asset.cpp.o.d"
  "CMakeFiles/ct_scada.dir/configuration.cpp.o"
  "CMakeFiles/ct_scada.dir/configuration.cpp.o.d"
  "CMakeFiles/ct_scada.dir/oahu.cpp.o"
  "CMakeFiles/ct_scada.dir/oahu.cpp.o.d"
  "CMakeFiles/ct_scada.dir/requirements.cpp.o"
  "CMakeFiles/ct_scada.dir/requirements.cpp.o.d"
  "CMakeFiles/ct_scada.dir/topology_io.cpp.o"
  "CMakeFiles/ct_scada.dir/topology_io.cpp.o.d"
  "libct_scada.a"
  "libct_scada.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_scada.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
