# Empty dependencies file for ct_scada.
# This may be replaced when dependencies are built.
