file(REMOVE_RECURSE
  "libct_scada.a"
)
