file(REMOVE_RECURSE
  "CMakeFiles/ct_util.dir/csv.cpp.o"
  "CMakeFiles/ct_util.dir/csv.cpp.o.d"
  "CMakeFiles/ct_util.dir/json_writer.cpp.o"
  "CMakeFiles/ct_util.dir/json_writer.cpp.o.d"
  "CMakeFiles/ct_util.dir/log.cpp.o"
  "CMakeFiles/ct_util.dir/log.cpp.o.d"
  "CMakeFiles/ct_util.dir/rng.cpp.o"
  "CMakeFiles/ct_util.dir/rng.cpp.o.d"
  "CMakeFiles/ct_util.dir/stats.cpp.o"
  "CMakeFiles/ct_util.dir/stats.cpp.o.d"
  "CMakeFiles/ct_util.dir/strings.cpp.o"
  "CMakeFiles/ct_util.dir/strings.cpp.o.d"
  "CMakeFiles/ct_util.dir/table.cpp.o"
  "CMakeFiles/ct_util.dir/table.cpp.o.d"
  "libct_util.a"
  "libct_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
