
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/attacker_power.cpp" "src/core/CMakeFiles/ct_core.dir/attacker_power.cpp.o" "gcc" "src/core/CMakeFiles/ct_core.dir/attacker_power.cpp.o.d"
  "/root/repo/src/core/case_study.cpp" "src/core/CMakeFiles/ct_core.dir/case_study.cpp.o" "gcc" "src/core/CMakeFiles/ct_core.dir/case_study.cpp.o.d"
  "/root/repo/src/core/evaluator.cpp" "src/core/CMakeFiles/ct_core.dir/evaluator.cpp.o" "gcc" "src/core/CMakeFiles/ct_core.dir/evaluator.cpp.o.d"
  "/root/repo/src/core/map.cpp" "src/core/CMakeFiles/ct_core.dir/map.cpp.o" "gcc" "src/core/CMakeFiles/ct_core.dir/map.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/ct_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/ct_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/ct_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/ct_core.dir/report.cpp.o.d"
  "/root/repo/src/core/restoration.cpp" "src/core/CMakeFiles/ct_core.dir/restoration.cpp.o" "gcc" "src/core/CMakeFiles/ct_core.dir/restoration.cpp.o.d"
  "/root/repo/src/core/siting.cpp" "src/core/CMakeFiles/ct_core.dir/siting.cpp.o" "gcc" "src/core/CMakeFiles/ct_core.dir/siting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/threat/CMakeFiles/ct_threat.dir/DependInfo.cmake"
  "/root/repo/build/src/scada/CMakeFiles/ct_scada.dir/DependInfo.cmake"
  "/root/repo/build/src/surge/CMakeFiles/ct_surge.dir/DependInfo.cmake"
  "/root/repo/build/src/terrain/CMakeFiles/ct_terrain.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ct_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/ct_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/storm/CMakeFiles/ct_storm.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/ct_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
