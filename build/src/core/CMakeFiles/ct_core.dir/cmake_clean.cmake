file(REMOVE_RECURSE
  "CMakeFiles/ct_core.dir/attacker_power.cpp.o"
  "CMakeFiles/ct_core.dir/attacker_power.cpp.o.d"
  "CMakeFiles/ct_core.dir/case_study.cpp.o"
  "CMakeFiles/ct_core.dir/case_study.cpp.o.d"
  "CMakeFiles/ct_core.dir/evaluator.cpp.o"
  "CMakeFiles/ct_core.dir/evaluator.cpp.o.d"
  "CMakeFiles/ct_core.dir/map.cpp.o"
  "CMakeFiles/ct_core.dir/map.cpp.o.d"
  "CMakeFiles/ct_core.dir/pipeline.cpp.o"
  "CMakeFiles/ct_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/ct_core.dir/report.cpp.o"
  "CMakeFiles/ct_core.dir/report.cpp.o.d"
  "CMakeFiles/ct_core.dir/restoration.cpp.o"
  "CMakeFiles/ct_core.dir/restoration.cpp.o.d"
  "CMakeFiles/ct_core.dir/siting.cpp.o"
  "CMakeFiles/ct_core.dir/siting.cpp.o.d"
  "libct_core.a"
  "libct_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
