file(REMOVE_RECURSE
  "libct_geo.a"
)
