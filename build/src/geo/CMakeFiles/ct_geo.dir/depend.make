# Empty dependencies file for ct_geo.
# This may be replaced when dependencies are built.
