file(REMOVE_RECURSE
  "CMakeFiles/ct_geo.dir/geopoint.cpp.o"
  "CMakeFiles/ct_geo.dir/geopoint.cpp.o.d"
  "CMakeFiles/ct_geo.dir/grid_index.cpp.o"
  "CMakeFiles/ct_geo.dir/grid_index.cpp.o.d"
  "CMakeFiles/ct_geo.dir/polygon.cpp.o"
  "CMakeFiles/ct_geo.dir/polygon.cpp.o.d"
  "libct_geo.a"
  "libct_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
