file(REMOVE_RECURSE
  "libct_mesh.a"
)
