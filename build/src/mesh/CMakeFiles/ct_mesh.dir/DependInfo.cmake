
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/coastal_builder.cpp" "src/mesh/CMakeFiles/ct_mesh.dir/coastal_builder.cpp.o" "gcc" "src/mesh/CMakeFiles/ct_mesh.dir/coastal_builder.cpp.o.d"
  "/root/repo/src/mesh/field.cpp" "src/mesh/CMakeFiles/ct_mesh.dir/field.cpp.o" "gcc" "src/mesh/CMakeFiles/ct_mesh.dir/field.cpp.o.d"
  "/root/repo/src/mesh/trimesh.cpp" "src/mesh/CMakeFiles/ct_mesh.dir/trimesh.cpp.o" "gcc" "src/mesh/CMakeFiles/ct_mesh.dir/trimesh.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/ct_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/terrain/CMakeFiles/ct_terrain.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
