# Empty compiler generated dependencies file for ct_mesh.
# This may be replaced when dependencies are built.
