file(REMOVE_RECURSE
  "CMakeFiles/ct_mesh.dir/coastal_builder.cpp.o"
  "CMakeFiles/ct_mesh.dir/coastal_builder.cpp.o.d"
  "CMakeFiles/ct_mesh.dir/field.cpp.o"
  "CMakeFiles/ct_mesh.dir/field.cpp.o.d"
  "CMakeFiles/ct_mesh.dir/trimesh.cpp.o"
  "CMakeFiles/ct_mesh.dir/trimesh.cpp.o.d"
  "libct_mesh.a"
  "libct_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
