file(REMOVE_RECURSE
  "CMakeFiles/ct_threat.dir/attacker.cpp.o"
  "CMakeFiles/ct_threat.dir/attacker.cpp.o.d"
  "CMakeFiles/ct_threat.dir/probabilistic_attacker.cpp.o"
  "CMakeFiles/ct_threat.dir/probabilistic_attacker.cpp.o.d"
  "CMakeFiles/ct_threat.dir/scenario.cpp.o"
  "CMakeFiles/ct_threat.dir/scenario.cpp.o.d"
  "CMakeFiles/ct_threat.dir/system_state.cpp.o"
  "CMakeFiles/ct_threat.dir/system_state.cpp.o.d"
  "libct_threat.a"
  "libct_threat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_threat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
