# Empty compiler generated dependencies file for ct_threat.
# This may be replaced when dependencies are built.
