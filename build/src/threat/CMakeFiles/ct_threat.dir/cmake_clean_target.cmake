file(REMOVE_RECURSE
  "libct_threat.a"
)
