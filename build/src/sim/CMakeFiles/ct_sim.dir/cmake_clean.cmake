file(REMOVE_RECURSE
  "CMakeFiles/ct_sim.dir/bft.cpp.o"
  "CMakeFiles/ct_sim.dir/bft.cpp.o.d"
  "CMakeFiles/ct_sim.dir/network.cpp.o"
  "CMakeFiles/ct_sim.dir/network.cpp.o.d"
  "CMakeFiles/ct_sim.dir/primary_backup.cpp.o"
  "CMakeFiles/ct_sim.dir/primary_backup.cpp.o.d"
  "CMakeFiles/ct_sim.dir/scada_des.cpp.o"
  "CMakeFiles/ct_sim.dir/scada_des.cpp.o.d"
  "CMakeFiles/ct_sim.dir/simulator.cpp.o"
  "CMakeFiles/ct_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/ct_sim.dir/workload.cpp.o"
  "CMakeFiles/ct_sim.dir/workload.cpp.o.d"
  "libct_sim.a"
  "libct_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
