
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/bft.cpp" "src/sim/CMakeFiles/ct_sim.dir/bft.cpp.o" "gcc" "src/sim/CMakeFiles/ct_sim.dir/bft.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/ct_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/ct_sim.dir/network.cpp.o.d"
  "/root/repo/src/sim/primary_backup.cpp" "src/sim/CMakeFiles/ct_sim.dir/primary_backup.cpp.o" "gcc" "src/sim/CMakeFiles/ct_sim.dir/primary_backup.cpp.o.d"
  "/root/repo/src/sim/scada_des.cpp" "src/sim/CMakeFiles/ct_sim.dir/scada_des.cpp.o" "gcc" "src/sim/CMakeFiles/ct_sim.dir/scada_des.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/ct_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/ct_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/sim/CMakeFiles/ct_sim.dir/workload.cpp.o" "gcc" "src/sim/CMakeFiles/ct_sim.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scada/CMakeFiles/ct_scada.dir/DependInfo.cmake"
  "/root/repo/build/src/threat/CMakeFiles/ct_threat.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ct_util.dir/DependInfo.cmake"
  "/root/repo/build/src/surge/CMakeFiles/ct_surge.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/ct_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/storm/CMakeFiles/ct_storm.dir/DependInfo.cmake"
  "/root/repo/build/src/terrain/CMakeFiles/ct_terrain.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/ct_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
