# Empty dependencies file for ct_terrain.
# This may be replaced when dependencies are built.
