file(REMOVE_RECURSE
  "CMakeFiles/ct_terrain.dir/oahu.cpp.o"
  "CMakeFiles/ct_terrain.dir/oahu.cpp.o.d"
  "CMakeFiles/ct_terrain.dir/shoreline.cpp.o"
  "CMakeFiles/ct_terrain.dir/shoreline.cpp.o.d"
  "CMakeFiles/ct_terrain.dir/terrain.cpp.o"
  "CMakeFiles/ct_terrain.dir/terrain.cpp.o.d"
  "libct_terrain.a"
  "libct_terrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_terrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
