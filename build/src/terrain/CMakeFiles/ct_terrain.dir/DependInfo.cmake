
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/terrain/oahu.cpp" "src/terrain/CMakeFiles/ct_terrain.dir/oahu.cpp.o" "gcc" "src/terrain/CMakeFiles/ct_terrain.dir/oahu.cpp.o.d"
  "/root/repo/src/terrain/shoreline.cpp" "src/terrain/CMakeFiles/ct_terrain.dir/shoreline.cpp.o" "gcc" "src/terrain/CMakeFiles/ct_terrain.dir/shoreline.cpp.o.d"
  "/root/repo/src/terrain/terrain.cpp" "src/terrain/CMakeFiles/ct_terrain.dir/terrain.cpp.o" "gcc" "src/terrain/CMakeFiles/ct_terrain.dir/terrain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/ct_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
