file(REMOVE_RECURSE
  "libct_terrain.a"
)
